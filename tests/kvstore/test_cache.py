"""WatchCache: read-through, push invalidation, leases, failure fallback.

Watch mode (store in-process) must be exact — pushed events keep entries
current so hits never go stale; lease mode (foreign runtime) bounds
staleness by ``ERMI_STORE_LEASE_MS``.  Both serve the last-known value
when the owning store node is down (stale-serve), matching the stub's
historical epoch-outage behaviour.
"""

from __future__ import annotations

import pytest

from repro.errors import KeyNotFoundError
from repro.kvstore import HyperStore, WatchCache


@pytest.fixture
def store():
    return HyperStore(nodes=2)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestWatchMode:
    def test_hit_after_miss_with_zero_store_reads(self, store):
        reads = []
        store._on_op = lambda op, key: reads.append(key) if op == "get" else None
        cache = WatchCache(store)
        store.put("k", 41)
        reads.clear()
        assert cache.get("k") == 41  # miss: one store read
        assert len(reads) == 1
        for _ in range(100):
            assert cache.get("k") == 41
        assert len(reads) == 1  # hits are free
        assert cache.stats()["hits"] == 100

    def test_pushed_write_updates_entry_without_rereading(self, store):
        cache = WatchCache(store)
        store.put("k", 1)
        assert cache.get("k") == 1
        store.put("k", 2)  # pushed event, no lease involved
        misses_before = cache.stats()["misses"]
        assert cache.get("k") == 2
        assert cache.stats()["misses"] == misses_before

    def test_pushed_delete_makes_key_absent(self, store):
        cache = WatchCache(store)
        store.put("k", 1)
        assert cache.get("k") == 1
        store.delete("k")
        assert cache.get("k", default="gone") == "gone"
        with pytest.raises(KeyNotFoundError):
            cache.get("k")

    def test_write_through_put_reads_own_write(self, store):
        reads = []
        store._on_op = lambda op, key: reads.append(key) if op == "get" else None
        cache = WatchCache(store)
        version = cache.put("k", "mine")
        assert version == 1
        assert store.get("k") == "mine"
        reads.clear()
        assert cache.get("k") == "mine"
        assert reads == []  # served from the written-through entry

    def test_update_delegates_rmw_to_store(self, store):
        cache = WatchCache(store)
        store.put("n", 10)
        assert cache.get("n") == 10
        assert cache.update("n", lambda v: v + 5) == 15
        assert cache.get("n") == 15
        assert store.get("n") == 15

    def test_absent_key_confirmed_and_cached(self, store):
        cache = WatchCache(store)
        assert cache.get("ghost", default=None) is None
        misses = cache.stats()["misses"]
        assert cache.get("ghost", default=None) is None
        assert cache.stats()["misses"] == misses  # absence is cached too
        store.put("ghost", "now-here")  # pushed put revives it
        assert cache.get("ghost") == "now-here"

    def test_close_cancels_subscriptions(self, store):
        cache = WatchCache(store)
        store.put("k", 1)
        cache.get("k")
        assert store.watch_stats()["subscriptions"] == 1
        cache.close()
        assert store.watch_stats()["subscriptions"] == 0


class TestLeaseMode:
    def test_lease_bounds_staleness(self, store):
        clock = FakeClock()
        cache = WatchCache(store, lease_ms=1000.0, watch=False, clock=clock)
        store.put("k", 1)
        assert cache.get("k") == 1
        store.put("k", 2)
        assert cache.get("k") == 1  # inside the lease: stale but bounded
        clock.t = 1.5
        assert cache.get("k") == 2  # lease expired: re-read

    def test_lease_mode_sees_deletes_after_expiry(self, store):
        clock = FakeClock()
        cache = WatchCache(store, lease_ms=1000.0, watch=False, clock=clock)
        store.put("k", 1)
        assert cache.get("k") == 1
        store.delete("k")
        clock.t = 2.0
        assert cache.get("k", default="gone") == "gone"

    def test_env_knob_sets_default_lease(self, store, monkeypatch):
        monkeypatch.setenv("ERMI_STORE_LEASE_MS", "250")
        clock = FakeClock()
        cache = WatchCache(store, watch=False, clock=clock)
        store.put("k", 1)
        assert cache.get("k") == 1
        store.put("k", 2)
        clock.t = 0.2
        assert cache.get("k") == 1  # still leased at 200ms
        clock.t = 0.3
        assert cache.get("k") == 2


class TestFailureFallback:
    def test_stale_serve_when_node_down(self, store):
        cache = WatchCache(store)
        store.put("k", "last-known")
        assert cache.get("k") == "last-known"
        store.fail_node(store.owner_node("k"))
        # The error event degraded the entry, so the hit path re-reads;
        # the read fails; the cache serves the last-known value.
        assert cache.get("k") == "last-known"
        assert cache.stats()["stale_served"] >= 1

    def test_recovery_revalidates_against_store(self, store):
        clock = FakeClock()
        cache = WatchCache(store, lease_ms=1000.0, clock=clock)
        store.put("k", 1)
        assert cache.get("k") == 1
        node = store.owner_node("k")
        store.fail_node(node)
        assert cache.get("k") == 1  # stale-served
        store.recover_node(node)
        store.put("k", 99)
        # The put's watch event re-arms the entry with the fresh value.
        assert cache.get("k") == 99

    def test_unknown_key_outage_propagates(self, store):
        from repro.errors import StoreUnavailableError

        cache = WatchCache(store)
        store.fail_node(store.owner_node("k"))
        with pytest.raises(StoreUnavailableError):
            cache.get("k")


class TestVersionOrdering:
    def test_late_stale_event_cannot_regress_entry(self, store):
        from repro.kvstore.watch import WatchEvent

        cache = WatchCache(store)
        store.put("k", "new")
        assert cache.get("k") == "new"
        # Simulate an event that was delayed in a queue from before the
        # read: version 0 < the entry's version, so it must be ignored.
        cache._on_event(WatchEvent("k", "put", "ancient", 0))
        assert cache.get("k") == "new"

    def test_gap_event_forces_revalidation(self, store):
        from repro.kvstore.watch import WatchEvent

        reads = []
        store._on_op = lambda op, key: reads.append(key) if op == "get" else None
        cache = WatchCache(store)
        store.put("k", 1)
        cache.get("k")
        reads.clear()
        cache.get("k")
        assert reads == []  # watched: free
        cache._on_event(WatchEvent("k", "gap"))
        cache.get("k")
        assert len(reads) == 1  # degraded entry re-validated


class TestObservability:
    def test_gauges_published_on_demand(self, store):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        cache = WatchCache(store, obs=registry)
        store.put("k", 1)
        cache.get("k")
        cache.get("k")
        cache.publish_gauges()
        snap = registry.snapshot()
        assert snap["gauges"]["kvstore.cache.store.hits"]["value"] == 1
        assert snap["gauges"]["kvstore.cache.store.misses"]["value"] == 1
        assert snap["gauges"]["kvstore.cache.store.hit_rate"]["value"] == 0.5
