"""Lock striping in the HyperStore partitions.

Per-key operations take one stripe lock (hash(key) masked into a
power-of-two lock array), so concurrent operations on different keys of
the same partition never contend — while same-key operations stay
linearizable.  Operation counts are kept per stripe, each mutated only
under its own lock, and summed on read.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import CASMismatchError
from repro.kvstore.store import HyperStore, Partition


class TestPartitionStripes:
    def test_stripes_must_be_power_of_two(self):
        for bad in (0, 3, 12, -4):
            with pytest.raises(ValueError):
                Partition("n", stripes=bad)

    def test_same_key_same_lock(self):
        part = Partition("n", stripes=8)
        assert part.lock_for("alpha") is part.lock_for("alpha")
        assert 0 <= part.stripe_of("alpha") < 8

    def test_op_count_sums_all_stripes(self):
        store = HyperStore(nodes=1, stripes_per_partition=4)
        for i in range(10):
            store.put(f"key-{i}", i)
        assert store.total_ops() == 10


class TestConcurrentOperations:
    def test_concurrent_incr_on_distinct_keys_is_exact(self):
        store = HyperStore(nodes=2)
        threads, per_thread = 8, 2_000

        def worker(tid):
            key = f"counter-{tid}"
            for _ in range(per_thread):
                store.incr(key)

        pool = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        for tid in range(threads):
            assert store.get(f"counter-{tid}") == per_thread
        assert store.total_ops() == threads * (per_thread + 1)

    def test_concurrent_incr_on_one_key_is_linearizable(self):
        store = HyperStore(nodes=1)
        threads, per_thread = 8, 1_000

        def worker():
            for _ in range(per_thread):
                store.incr("shared")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert store.get("shared") == threads * per_thread

    def test_cas_create_if_absent_has_one_winner(self):
        store = HyperStore(nodes=1)
        winners = []
        losers = []
        barrier = threading.Barrier(8)

        def worker(tid):
            barrier.wait()
            try:
                store.cas("leader", None, tid)
                winners.append(tid)
            except CASMismatchError:
                losers.append(tid)

        pool = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(8)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(winners) == 1 and len(losers) == 7
        assert store.get("leader") == winners[0]

    def test_concurrent_update_read_modify_write_is_exact(self):
        store = HyperStore(nodes=1)
        threads, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                store.update("rmw", lambda v: v + 1, default=0)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert store.get("rmw") == threads * per_thread

    def test_keys_scan_tolerates_concurrent_writers(self):
        store = HyperStore(nodes=2)
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                store.put(f"w-{i % 64}", i)
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                for key in store.keys(prefix="w-"):
                    assert key.startswith("w-")
        finally:
            stop.set()
            t.join()


class TestMigrationWithStripes:
    def test_add_node_preserves_all_entries(self):
        store = HyperStore(nodes=1)
        for i in range(200):
            store.put(f"key-{i}", i)
        store.add_node()
        assert store.node_count() == 2
        assert sum(store.partition_sizes().values()) == 200
        for i in range(200):
            assert store.get(f"key-{i}") == i

    def test_versions_survive_migration(self):
        store = HyperStore(nodes=1)
        for _ in range(3):
            store.put("versioned", "v")
        store.add_node()
        assert store.get_versioned("versioned").version == 3


class TestAccounting:
    def test_hot_key_tracking_still_works(self):
        store = HyperStore(nodes=1, track_hot_keys=True)
        store.put("cold", 1)
        for _ in range(5):
            store.get("hot", default=None)
        top_key, hits = store.hot_keys(top_n=1)[0]
        assert top_key == "hot" and hits == 5
