"""Tests for distributed locks: ownership, reentrancy, TTL, fencing."""

import threading

import pytest

from repro.errors import LockNotHeldError, LockTimeoutError
from repro.kvstore.locks import LockManager
from repro.sim.clock import SimClock


@pytest.fixture
def locks():
    return LockManager()


class TestTryLock:
    def test_first_acquire_succeeds(self, locks):
        assert locks.try_lock("L", "a") is not None

    def test_second_owner_blocked(self, locks):
        locks.try_lock("L", "a")
        assert locks.try_lock("L", "b") is None

    def test_reentrant_same_owner(self, locks):
        t1 = locks.try_lock("L", "a")
        t2 = locks.try_lock("L", "a")
        assert t1 == t2
        assert locks.lease_of("L").hold_count == 2

    def test_different_locks_independent(self, locks):
        locks.try_lock("L1", "a")
        assert locks.try_lock("L2", "b") is not None


class TestUnlock:
    def test_unlock_releases(self, locks):
        locks.try_lock("L", "a")
        locks.unlock("L", "a")
        assert locks.holder("L") is None
        assert locks.try_lock("L", "b") is not None

    def test_reentrant_unlock_needs_matching_count(self, locks):
        locks.try_lock("L", "a")
        locks.try_lock("L", "a")
        locks.unlock("L", "a")
        assert locks.holder("L") == "a"  # still held once
        locks.unlock("L", "a")
        assert locks.holder("L") is None

    def test_unlock_by_non_holder_raises(self, locks):
        locks.try_lock("L", "a")
        with pytest.raises(LockNotHeldError):
            locks.unlock("L", "b")

    def test_unlock_unheld_raises(self, locks):
        with pytest.raises(LockNotHeldError):
            locks.unlock("L", "a")


class TestFencingTokens:
    def test_tokens_strictly_increase_across_grants(self, locks):
        t1 = locks.try_lock("L", "a")
        locks.unlock("L", "a")
        t2 = locks.try_lock("L", "b")
        locks.unlock("L", "b")
        t3 = locks.try_lock("L", "a")
        assert t1 < t2 < t3


class TestBlockingLock:
    def test_blocking_lock_waits_for_release(self, locks):
        locks.try_lock("L", "a")
        acquired = threading.Event()

        def contender():
            locks.lock("L", "b", timeout=5.0)
            acquired.set()

        t = threading.Thread(target=contender)
        t.start()
        assert not acquired.wait(timeout=0.1)
        locks.unlock("L", "a")
        assert acquired.wait(timeout=5.0)
        t.join()

    def test_timeout_raises(self, locks):
        locks.try_lock("L", "a")
        with pytest.raises(LockTimeoutError):
            locks.lock("L", "b", timeout=0.05)

    def test_zero_contention_lock_is_immediate(self, locks):
        assert locks.lock("L", "a", timeout=0.01) is not None


class TestTTL:
    def test_lease_expires_on_virtual_clock(self):
        clock = SimClock()
        locks = LockManager(clock=clock)
        locks.try_lock("L", "a", ttl=10.0)
        assert locks.holder("L") == "a"
        clock.advance(11.0)
        assert locks.holder("L") is None
        assert locks.try_lock("L", "b") is not None

    def test_unexpired_lease_still_held(self):
        clock = SimClock()
        locks = LockManager(clock=clock)
        locks.try_lock("L", "a", ttl=10.0)
        clock.advance(5.0)
        assert locks.holder("L") == "a"


class TestAdministration:
    def test_force_release(self, locks):
        locks.try_lock("L", "a")
        assert locks.force_release("L") is True
        assert locks.try_lock("L", "b") is not None

    def test_force_release_unheld_returns_false(self, locks):
        assert locks.force_release("L") is False

    def test_held_by_lists_owner_locks(self, locks):
        locks.try_lock("L1", "a")
        locks.try_lock("L2", "a")
        locks.try_lock("L3", "b")
        assert sorted(locks.held_by("a")) == ["L1", "L2"]

    def test_lease_of_returns_copy(self, locks):
        locks.try_lock("L", "a")
        lease = locks.lease_of("L")
        lease.hold_count = 99
        assert locks.lease_of("L").hold_count == 1


class TestMutualExclusionStress:
    def test_critical_section_is_exclusive(self, locks):
        counter = {"value": 0}

        def worker(owner):
            for _ in range(100):
                locks.lock("crit", owner, timeout=10.0)
                current = counter["value"]
                counter["value"] = current + 1
                locks.unlock("crit", owner)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 600
