"""The trace-derived summary must match hand-assembled metrics to 1e-9.

``python -m repro metrics`` computes agility / provisioning / QoS by
feeding trace events into the *same* tracker classes these tests
assemble by hand — so any drift between the two accounting paths is a
bug in the adapters, not a tolerance question.  Hence the tight bound.
"""

import pytest

from repro.core.pool import ProvisioningRecord
from repro.metrics.agility import AgilityTracker
from repro.metrics.provisioning import ProvisioningSeries
from repro.metrics.qos import QoSTracker
from repro.obs import Tracer
from repro.obs.export import summarize_trace
from repro.sim.clock import SimClock

TOL = 1e-9

# The hand-written run: (at, cap_prov, req_min) agility samples,
# member lifecycle intervals, and client calls.
AGILITY_POINTS = [
    (0.0, 2, 2),
    (10.0, 2, 5),   # shortage 3
    (20.0, 4, 5),   # shortage 1
    (30.0, 7, 5),   # excess 2
    (40.0, 5, 5),
]
UP_INTERVALS = [  # (uid, requested_at, active_at)
    (1, 0.0, 1.25),
    (2, 0.0, 2.5),
    (3, 12.0, 15.75),
]
DOWN_INTERVALS = [  # (uid, drain_started, removed_at)
    (3, 33.0, 34.5),
]
CALLS = [  # (at, latency, ok, attempts)
    (5.0, 0.001, True, 1),
    (15.0, 0.004, True, 3),
    (25.0, 0.002, True, 1),
    (35.0, 0.009, False, 4),
]


def build_trace():
    clock = SimClock()
    tracer = Tracer(clock=clock)
    moments = []
    for at, cap, req in AGILITY_POINTS:
        moments.append((at, "metrics", "agility-sample",
                        {"cap_prov": cap, "req_min": req}))
    for uid, requested, active in UP_INTERVALS:
        moments.append((active, "pool", "member-active",
                        {"pool": "p", "uid": uid, "requested_at": requested}))
    for uid, drain, removed in DOWN_INTERVALS:
        moments.append((removed, "pool", "member-removed",
                        {"pool": "p", "uid": uid, "drain_started": drain}))
    for at, latency, ok, attempts in CALLS:
        moments.append((at, "client", "call",
                        {"method": "ping", "latency": latency, "ok": ok,
                         "attempts": attempts, "rounds": 1,
                         "outcome": "ok" if ok else "failed"}))
    for at, component, kind, fields in sorted(moments, key=lambda m: m[0]):
        clock.advance(at)
        tracer.emit(component, kind, **fields)
    return tracer.events()


@pytest.fixture(scope="module")
def summary():
    return summarize_trace(build_trace())


class TestAgilityMatchesHandAssembled:
    def test_all_agility_numbers(self, summary):
        tracker = AgilityTracker()
        for at, cap, req in AGILITY_POINTS:
            tracker.record(at, cap_prov=cap, req_min=req)
        section = summary["agility"]
        assert section["samples"] == len(AGILITY_POINTS)
        assert section["average"] == pytest.approx(
            tracker.average_agility(), abs=TOL
        )
        assert section["average_excess"] == pytest.approx(
            tracker.average_excess(), abs=TOL
        )
        assert section["average_shortage"] == pytest.approx(
            tracker.average_shortage(), abs=TOL
        )
        assert section["max"] == pytest.approx(tracker.max_agility(), abs=TOL)
        assert section["zero_fraction"] == pytest.approx(
            tracker.zero_fraction(), abs=TOL
        )

    def test_spot_check_against_arithmetic(self, summary):
        # (3 + 1 + 2) / 5, computed by hand from AGILITY_POINTS.
        assert summary["agility"]["average"] == pytest.approx(1.2, abs=TOL)
        assert summary["agility"]["zero_fraction"] == pytest.approx(
            0.4, abs=TOL
        )


class TestProvisioningMatchesHandAssembled:
    def test_up_and_down_latencies(self, summary):
        records = [
            ProvisioningRecord("p", uid, requested, active)
            for uid, requested, active in UP_INTERVALS
        ] + [
            ProvisioningRecord("p", uid, drain, removed, direction="down")
            for uid, drain, removed in DOWN_INTERVALS
        ]
        series = ProvisioningSeries(records)
        section = summary["provisioning"]
        assert section["up"] == len(UP_INTERVALS)
        assert section["down"] == len(DOWN_INTERVALS)
        assert section["mean_up_latency"] == pytest.approx(
            series.mean_latency(), abs=TOL
        )
        assert section["max_up_latency"] == pytest.approx(
            series.max_latency(), abs=TOL
        )

    def test_spot_check_against_arithmetic(self, summary):
        # mean of 1.25, 2.5, 3.75 = 2.5; max = 3.75.
        assert summary["provisioning"]["mean_up_latency"] == pytest.approx(
            2.5, abs=TOL
        )
        assert summary["provisioning"]["max_up_latency"] == pytest.approx(
            3.75, abs=TOL
        )


class TestInvocationsMatchHandAssembled:
    def test_qos_numbers(self, summary):
        tracker = QoSTracker()
        for at, latency, ok, _attempts in CALLS:
            if ok:
                tracker.record(at=at, latency=latency)
        section = summary["invocations"]
        assert section["throughput"] == pytest.approx(
            tracker.throughput(), abs=TOL
        )
        assert section["mean_latency"] == pytest.approx(
            tracker.mean_latency(), abs=TOL
        )

    def test_call_accounting(self, summary):
        section = summary["invocations"]
        assert section["calls"] == 4
        assert section["errors"] == 1
        assert section["retried_calls"] == 2      # attempts 3 and 4
        assert section["retry_attempts"] == (3 - 1) + (4 - 1)
        # mean latency over the three ok calls, by hand.
        assert section["mean_latency"] == pytest.approx(
            (0.001 + 0.004 + 0.002) / 3, abs=TOL
        )
