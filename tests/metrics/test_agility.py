"""Tests for the SPEC agility metric."""

import pytest

from repro.metrics.agility import AgilitySample, AgilityTracker


class TestAgilitySample:
    def test_excess_when_overprovisioned(self):
        sample = AgilitySample(at=0.0, cap_prov=10, req_min=6)
        assert sample.excess == 4
        assert sample.shortage == 0
        assert sample.agility == 4

    def test_shortage_when_underprovisioned(self):
        sample = AgilitySample(at=0.0, cap_prov=3, req_min=8)
        assert sample.excess == 0
        assert sample.shortage == 5
        assert sample.agility == 5

    def test_perfect_provisioning_is_zero(self):
        sample = AgilitySample(at=0.0, cap_prov=5, req_min=5)
        assert sample.agility == 0


class TestAgilityTracker:
    def test_average_is_spec_formula(self):
        """(1/N)(sum Excess + sum Shortage)."""
        tracker = AgilityTracker()
        tracker.record(0, cap_prov=10, req_min=6)   # excess 4
        tracker.record(1, cap_prov=4, req_min=6)    # shortage 2
        tracker.record(2, cap_prov=6, req_min=6)    # 0
        assert tracker.average_agility() == pytest.approx((4 + 2) / 3)

    def test_empty_tracker_is_zero(self):
        assert AgilityTracker().average_agility() == 0.0
        assert AgilityTracker().max_agility() == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            AgilityTracker().record(0, cap_prov=-1, req_min=2)

    def test_excess_and_shortage_averages(self):
        tracker = AgilityTracker()
        tracker.record(0, cap_prov=10, req_min=6)
        tracker.record(1, cap_prov=4, req_min=6)
        assert tracker.average_excess() == pytest.approx(2.0)
        assert tracker.average_shortage() == pytest.approx(1.0)

    def test_zero_fraction(self):
        """The paper highlights how often agility returns to 0."""
        tracker = AgilityTracker()
        tracker.record(0, 5, 5)
        tracker.record(1, 6, 5)
        tracker.record(2, 5, 5)
        tracker.record(3, 5, 5)
        assert tracker.zero_fraction() == pytest.approx(0.75)

    def test_series_matches_samples(self):
        tracker = AgilityTracker()
        tracker.record(0, 10, 6)
        tracker.record(600, 4, 6)
        assert tracker.series() == [(0, 4.0), (600, 2.0)]

    def test_weighted_variant(self):
        """SPEC debates unequal weights; the tracker supports them."""
        tracker = AgilityTracker(excess_weight=1.0, shortage_weight=2.0)
        tracker.record(0, cap_prov=10, req_min=6)  # excess 4
        tracker.record(1, cap_prov=4, req_min=6)   # shortage 2
        assert tracker.average_agility() == pytest.approx((4 + 2 * 2) / 2)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            AgilityTracker(excess_weight=-1.0)

    def test_max_agility(self):
        tracker = AgilityTracker()
        tracker.record(0, 10, 6)
        tracker.record(1, 2, 12)
        assert tracker.max_agility() == 10
