"""Tests for provisioning-interval summaries."""

import pytest

from repro.core.pool import ProvisioningRecord
from repro.metrics.provisioning import ProvisioningSeries


def rec(requested, active, direction="up"):
    return ProvisioningRecord(
        pool="p", uid=1, requested_at=requested, active_at=active,
        direction=direction,
    )


class TestProvisioningSeries:
    def test_latency_computed(self):
        assert rec(10.0, 14.5).latency == pytest.approx(4.5)

    def test_up_and_down_separated(self):
        series = ProvisioningSeries(
            [rec(0, 5), rec(10, 12, "down"), rec(20, 28)]
        )
        assert len(series.up_events()) == 2
        assert len(series.down_events()) == 1

    def test_series_pairs(self):
        series = ProvisioningSeries([rec(0, 5), rec(100, 120)])
        assert series.series() == [(0, 5), (100, 20)]

    def test_max_and_mean(self):
        series = ProvisioningSeries([rec(0, 10), rec(0, 20)])
        assert series.max_latency() == 20
        assert series.mean_latency() == 15

    def test_empty_series(self):
        series = ProvisioningSeries([])
        assert series.max_latency() == 0.0
        assert series.mean_latency() == 0.0
        assert series.series() == []

    def test_bucketed_means(self):
        series = ProvisioningSeries(
            [rec(10, 20), rec(50, 52), rec(130, 140)]
        )
        buckets = series.bucketed(60.0)
        assert buckets == [(0.0, 6.0), (120.0, 10.0)]

    def test_bucketed_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ProvisioningSeries([]).bucketed(0)


class TestQoSTracker:
    def test_throughput_over_span(self):
        from repro.metrics.qos import QoSTracker

        tracker = QoSTracker()
        for i in range(11):
            tracker.record(at=float(i), latency=0.01)
        assert tracker.throughput() == pytest.approx(1.1)

    def test_latency_percentiles(self):
        from repro.metrics.qos import QoSTracker

        tracker = QoSTracker()
        for i in range(1, 101):
            tracker.record(at=float(i), latency=i / 1000.0)
        assert tracker.mean_latency() == pytest.approx(0.0505)
        assert tracker.percentile_latency(99) == pytest.approx(0.099)
        assert tracker.percentile_latency(50) == pytest.approx(0.050)

    def test_meets_target(self):
        from repro.metrics.qos import QoSTarget, QoSTracker

        tracker = QoSTracker()
        for i in range(100):
            tracker.record(at=i * 0.1, latency=0.005)
        good = QoSTarget(min_throughput=5.0, max_mean_latency=0.01)
        tight = QoSTarget(min_throughput=50.0, max_mean_latency=0.01)
        assert tracker.meets(good)
        assert not tracker.meets(tight)

    def test_negative_latency_rejected(self):
        from repro.metrics.qos import QoSTracker

        with pytest.raises(ValueError):
            QoSTracker().record(0.0, -0.1)

    def test_reset(self):
        from repro.metrics.qos import QoSTracker

        tracker = QoSTracker()
        tracker.record(0.0, 0.1)
        tracker.reset()
        assert tracker.operations == 0
        assert tracker.throughput() == 0.0
