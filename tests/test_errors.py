"""Tests for the exception taxonomy: applications must be able to catch
failures at any granularity the paper's fault model defines."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_an_elasticrmi_error(self):
        leaf_types = [
            errors.ConnectError, errors.MarshalError, errors.UnmarshalError,
            errors.NoSuchObjectError, errors.NotBoundError,
            errors.AlreadyBoundError, errors.ApplicationError,
            errors.InsufficientResourcesError, errors.MasterUnavailableError,
            errors.SliceError, errors.StoreUnavailableError,
            errors.KeyNotFoundError, errors.CASMismatchError,
            errors.LockTimeoutError, errors.LockNotHeldError,
            errors.PoolConfigurationError, errors.PoolShutdownError,
            errors.MemberDrainedError, errors.ScalingDisabledError,
        ]
        for exc_type in leaf_types:
            assert issubclass(exc_type, errors.ElasticRMIError), exc_type

    def test_rmi_failures_are_remote_errors(self):
        for exc_type in (
            errors.ConnectError, errors.MarshalError, errors.UnmarshalError,
            errors.NoSuchObjectError, errors.ApplicationError,
        ):
            assert issubclass(exc_type, errors.RemoteError)

    def test_cluster_failures_are_cluster_errors(self):
        for exc_type in (
            errors.InsufficientResourcesError,
            errors.MasterUnavailableError, errors.SliceError,
        ):
            assert issubclass(exc_type, errors.ClusterError)

    def test_store_failures_are_store_errors(self):
        for exc_type in (
            errors.StoreUnavailableError, errors.KeyNotFoundError,
            errors.CASMismatchError, errors.LockError,
        ):
            assert issubclass(exc_type, errors.StoreError)

    def test_lock_failures_are_lock_errors(self):
        assert issubclass(errors.LockTimeoutError, errors.LockError)
        assert issubclass(errors.LockNotHeldError, errors.LockError)

    def test_pool_failures_are_pool_errors(self):
        for exc_type in (
            errors.PoolConfigurationError, errors.PoolShutdownError,
            errors.MemberDrainedError, errors.ScalingDisabledError,
        ):
            assert issubclass(exc_type, errors.PoolError)


class TestRemoteErrorCause:
    def test_cause_is_carried(self):
        inner = ValueError("inner")
        outer = errors.RemoteError("outer", cause=inner)
        assert outer.cause is inner

    def test_cause_defaults_to_none(self):
        assert errors.RemoteError("msg").cause is None

    def test_application_error_preserves_cause_type(self):
        cause = KeyError("k")
        err = errors.ApplicationError("remote raised", cause=cause)
        assert isinstance(err.cause, KeyError)

    def test_catching_by_family(self):
        """An application can catch all RMI transport trouble with one
        except clause while letting store failures pass."""
        try:
            raise errors.ConnectError("endpoint down")
        except errors.RemoteError as exc:
            assert "endpoint down" in str(exc)

        with pytest.raises(errors.StoreError):
            raise errors.KeyNotFoundError("k")
