"""Tests for the comparison deployments: overprovisioning oracle and the
CloudWatch + AutoScaling model."""

import random

import pytest

from repro.baselines.cloudwatch import CloudWatchAutoScaler, CloudWatchConfig
from repro.baselines.overprovision import OverprovisioningDeployment
from repro.cluster.provisioner import VMProvisioner


class TestOverprovisioning:
    def test_capacity_is_fixed(self):
        deploy = OverprovisioningDeployment(30)
        deploy.observe(0.0, 99.0, 99.0)
        deploy.observe(600.0, 1.0, 1.0)
        assert deploy.capacity() == 30

    def test_zero_provisioning_latency(self):
        assert OverprovisioningDeployment(30).provisioning_latencies() == []

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            OverprovisioningDeployment(0)


def make_scaler(**overrides):
    defaults = dict(
        min_capacity=2, max_capacity=10, period_s=300.0,
        evaluation_periods=1, cooldown_s=300.0,
    )
    defaults.update(overrides)
    config = CloudWatchConfig(**defaults)
    return CloudWatchAutoScaler(config, VMProvisioner(random.Random(0)))


class TestCloudWatchScaleOut:
    def test_high_cpu_launches_instance_after_period(self):
        scaler = make_scaler()
        scaler.observe(300.0, 95.0, 10.0)
        assert scaler.provisioned() == 3
        assert scaler.capacity() == 2  # still booting

    def test_instance_serves_only_after_boot(self):
        scaler = make_scaler()
        scaler.observe(300.0, 95.0, 10.0)
        boot = scaler.provisioning_latencies()[0][1]
        scaler.observe(300.0 + boot - 1.0, 50.0, 10.0)
        assert scaler.capacity() == 2
        scaler.observe(300.0 + boot + 1.0, 50.0, 10.0)
        assert scaler.capacity() == 3

    def test_boot_takes_minutes(self):
        scaler = make_scaler()
        scaler.observe(300.0, 95.0, 10.0)
        assert scaler.provisioning_latencies()[0][1] >= 240.0

    def test_ram_condition_is_or(self):
        scaler = make_scaler()
        scaler.observe(300.0, 10.0, 90.0)  # RAM breach only
        assert scaler.provisioned() == 3

    def test_cooldown_blocks_rapid_scaling(self):
        scaler = make_scaler(cooldown_s=600.0)
        scaler.observe(300.0, 95.0, 10.0)
        scaler.observe(600.0, 95.0, 10.0)  # within cooldown
        assert scaler.provisioned() == 3
        scaler.observe(1000.0, 95.0, 10.0)  # cooldown passed
        assert scaler.provisioned() == 4

    def test_max_capacity_respected(self):
        scaler = make_scaler(max_capacity=3, cooldown_s=0.0)
        for i in range(1, 10):
            scaler.observe(i * 300.0, 99.0, 99.0)
        assert scaler.provisioned() == 3

    def test_evaluation_periods_require_consecutive_breaches(self):
        scaler = make_scaler(evaluation_periods=2)
        scaler.observe(300.0, 95.0, 10.0)
        assert scaler.provisioned() == 2  # one breach, not enough
        scaler.observe(600.0, 95.0, 10.0)
        assert scaler.provisioned() == 3

    def test_breach_streak_resets_on_normal_sample(self):
        scaler = make_scaler(evaluation_periods=2)
        scaler.observe(300.0, 95.0, 10.0)
        scaler.observe(600.0, 70.0, 10.0)  # normal
        scaler.observe(900.0, 95.0, 10.0)
        assert scaler.provisioned() == 2


class TestCloudWatchScaleIn:
    def test_low_utilization_removes_instance(self):
        scaler = make_scaler()
        scaler.observe(300.0, 95.0, 10.0)   # out -> 3 provisioned
        scaler.observe(900.0, 10.0, 5.0)    # in  -> 2
        assert scaler.provisioned() == 2

    def test_scale_in_requires_both_low(self):
        scaler = make_scaler()
        scaler.observe(300.0, 10.0, 60.0)  # RAM still above low threshold
        assert scaler.provisioned() == 2
        assert scaler.capacity() == 2

    def test_min_capacity_respected(self):
        scaler = make_scaler(cooldown_s=0.0)
        for i in range(1, 10):
            scaler.observe(i * 300.0, 5.0, 5.0)
        assert scaler.provisioned() == 2

    def test_booting_instance_terminated_first(self):
        scaler = make_scaler(cooldown_s=0.0)
        scaler.observe(300.0, 95.0, 10.0)   # launch (booting)
        scaler.observe(600.0, 5.0, 5.0)     # scale in before boot completes
        assert scaler.provisioned() == 2
        assert scaler.capacity() == 2


class TestCloudWatchConfig:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            CloudWatchConfig(min_capacity=5, max_capacity=2)

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CloudWatchConfig(cpu_high=40.0, cpu_low=50.0)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            CloudWatchConfig(period_s=0)
        with pytest.raises(ValueError):
            CloudWatchConfig(evaluation_periods=0)
