"""Tests for the experiment harness, app models, and deployments."""

import pytest

from repro.experiments.appmodels import APP_MODELS, QOS_UTILIZATION
from repro.experiments.deployments import (
    DEPLOYMENTS,
    CpuMemService,
    build_deployment,
)
from repro.experiments.harness import pattern_for, run_deployment
from repro.sim.kernel import Kernel
from repro.workloads.patterns import AbruptPattern, CyclicPattern


class TestAppModels:
    def test_all_four_apps_present(self):
        assert set(APP_MODELS) == {"marketcetera", "hedwig", "paxos", "dcs"}

    def test_req_min_scales_with_rate(self):
        app = APP_MODELS["marketcetera"]
        assert app.req_min(0) == app.min_members
        low = app.req_min(10_000)
        high = app.req_min(40_000)
        assert app.min_members <= low < high

    def test_req_min_matches_qos_boundary(self):
        app = APP_MODELS["dcs"]
        rate = 35_000
        req = app.req_min(rate)
        capacity = app.capacity_per_member
        # req members at the QoS boundary can serve the rate; one fewer
        # cannot.
        assert req * capacity * QOS_UTILIZATION >= rate
        assert (req - 1) * capacity * QOS_UTILIZATION < rate

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            APP_MODELS["paxos"].req_min(-1)

    def test_utilization_model(self):
        app = APP_MODELS["marketcetera"]
        assert app.utilization(0, 4) == 0.0
        assert app.utilization(app.capacity_per_member * 4, 4) == 100.0
        assert app.utilization(app.capacity_per_member * 2, 4) == 50.0
        assert app.utilization(1e9, 4) == 100.0  # saturates

    def test_hedwig_req_modifier_varies_over_time(self):
        app = APP_MODELS["hedwig"]
        values = {round(app.req_modifier(t), 6) for t in range(0, 20000, 600)}
        assert len(values) > 5
        assert all(v >= 1.0 for v in values)

    def test_peak_req_covers_whole_trace(self):
        app = APP_MODELS["paxos"]
        pattern = AbruptPattern(app.point_a)
        peak = app.peak_req(pattern)
        for minute in range(0, 451, 5):
            assert app.req_min(pattern.rate(minute * 60), minute * 60) <= peak

    def test_capacity_constants_match_app_classes(self):
        for app in APP_MODELS.values():
            assert app.capacity_per_member == app.cls.CAPACITY_PER_MEMBER


class TestPatternSelection:
    def test_abrupt_uses_point_a(self):
        app = APP_MODELS["hedwig"]
        pattern = pattern_for(app, "abrupt")
        assert isinstance(pattern, AbruptPattern)
        assert pattern.magnitude == app.point_a

    def test_cyclic_uses_point_b(self):
        app = APP_MODELS["hedwig"]
        pattern = pattern_for(app, "cyclic")
        assert isinstance(pattern, CyclicPattern)
        assert pattern.magnitude == pytest.approx(app.point_a * 1.2)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            pattern_for(APP_MODELS["dcs"], "sawtooth")


class TestDeploymentConstruction:
    def test_all_four_deployments_build(self):
        app = APP_MODELS["marketcetera"]
        pattern = pattern_for(app, "abrupt")
        for name in DEPLOYMENTS:
            deployment = build_deployment(name, Kernel(), app, pattern, seed=0)
            assert deployment.name == name
            deployment.stop()

    def test_unknown_deployment_rejected(self):
        app = APP_MODELS["marketcetera"]
        with pytest.raises(ValueError):
            build_deployment("magic", Kernel(), app, None, 0)

    def test_cpumem_service_uses_coarse_policy(self):
        from repro.core.api import ElasticConfig
        from repro.core.scaling import CoarseGrainedPolicy, select_policy

        proto = CpuMemService()
        policy = select_policy(CpuMemService, proto._ermi_config, None)
        assert isinstance(policy, CoarseGrainedPolicy)
        assert proto._ermi_config.burst_interval == 300.0

    def test_fine_deployment_runs_real_app_class(self):
        app = APP_MODELS["dcs"]
        pattern = pattern_for(app, "abrupt")
        kernel = Kernel()
        deployment = build_deployment("elasticrmi", kernel, app, pattern, 0)
        kernel.run_until(40.0)
        members = deployment.pool.active_members()
        assert all(isinstance(m.instance, app.cls) for m in members)
        deployment.stop()


class TestRunDeployment:
    def test_result_has_full_sample_series(self):
        result = run_deployment("paxos", "abrupt", "overprovisioning")
        # 450 minutes sampled every 10 minutes, first sample at t=600.
        assert len(result.tracker.samples) == 45
        assert result.deployment == "overprovisioning"

    def test_overprovisioning_capacity_constant(self):
        result = run_deployment("paxos", "abrupt", "overprovisioning")
        capacities = {cap for _, cap in result.capacity_series}
        assert len(capacities) == 1

    def test_elasticrmi_capacity_tracks_requirement(self):
        result = run_deployment("paxos", "abrupt", "elasticrmi")
        caps = dict(result.capacity_series)
        reqs = dict(result.req_series)
        # At the vast majority of samples, capacity is within 3 members
        # of the requirement.
        close = sum(1 for t in caps if abs(caps[t] - reqs[t]) <= 3)
        assert close / len(caps) > 0.85

    def test_deterministic_given_seed(self):
        a = run_deployment("hedwig", "cyclic", "elasticrmi", seed=3)
        b = run_deployment("hedwig", "cyclic", "elasticrmi", seed=3)
        assert a.tracker.series() == b.tracker.series()
        assert a.provisioning == b.provisioning

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_deployment("redis", "abrupt", "elasticrmi")
