"""Unit tests for the figure drivers and sweeps (cheap paths only; the
full runs live in benchmarks/)."""

import pytest

from repro.experiments.figures import (
    FIGURE7_PANELS,
    figure7_agility,
    figure7a_workload,
    figure7b_workload,
    print_agility_panel,
)
from repro.experiments.sweeps import SweepSummary, seed_sweep
from repro.workloads.patterns import POINT_A


class TestPanelRegistry:
    def test_eight_panels_cover_four_apps_twice(self):
        assert len(FIGURE7_PANELS) == 8
        apps = [app for app, _ in FIGURE7_PANELS.values()]
        assert sorted(set(apps)) == ["dcs", "hedwig", "marketcetera", "paxos"]
        workloads = [w for _, w in FIGURE7_PANELS.values()]
        assert workloads.count("abrupt") == 4
        assert workloads.count("cyclic") == 4

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            figure7_agility("7z")


class TestWorkloadFigures:
    def test_7a_trace_shape(self):
        trace = figure7a_workload("dcs", step_min=10.0)
        assert trace[0][0] == 0.0
        assert trace[-1][0] == 450.0
        assert max(r for _, r in trace) == POINT_A["dcs"]

    def test_7b_trace_shape(self):
        trace = figure7b_workload("dcs", step_min=10.0)
        assert trace[-1][0] == 500.0
        assert max(r for _, r in trace) <= POINT_A["dcs"] * 1.2 + 1e-6

    def test_step_resolution(self):
        coarse = figure7a_workload("paxos", step_min=50.0)
        fine = figure7a_workload("paxos", step_min=5.0)
        assert len(fine) > len(coarse)


class TestPanelPrinting:
    def test_printed_rows_include_all_deployments(self):
        panel = figure7_agility("7g")
        text = print_agility_panel(panel)
        for name in panel.results:
            assert name in text
        assert "x ERMI" in text


class TestSweepSummary:
    def test_ordering_stable_detects_violation(self):
        summary = SweepSummary()
        summary.add("a", 1.0)
        summary.add("b", 2.0)
        summary.add("a", 3.0)  # second point: a > b
        summary.add("b", 2.0)
        assert not summary.ordering_stable("a", "b")

    def test_ordering_stable_happy_path(self):
        summary = SweepSummary()
        for a, b in ((1.0, 2.0), (1.5, 3.0)):
            summary.add("a", a)
            summary.add("b", b)
        assert summary.ordering_stable("a", "b")

    def test_stdev_single_point_is_zero(self):
        summary = SweepSummary()
        summary.add("a", 1.0)
        assert summary.stdev("a") == 0.0

    def test_seed_sweep_rejects_unknown_figure(self):
        with pytest.raises(ValueError):
            seed_sweep("9x")
