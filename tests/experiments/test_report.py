"""Tests for the full-evaluation report generator."""

import pytest

from repro.experiments.report import EvaluationReport, run_full_evaluation


@pytest.fixture(scope="module")
def evaluation():
    """One full evaluation run shared across the module (seconds)."""
    return run_full_evaluation(seed=0)


class TestFullEvaluation:
    def test_all_panels_present(self, evaluation):
        assert set(evaluation.panels) == {
            "7c", "7d", "7e", "7f", "7g", "7h", "7i", "7j",
        }
        assert set(evaluation.provisioning) == {"abrupt", "cyclic"}

    def test_every_shape_claim_holds(self, evaluation):
        for claim, held in evaluation.claims():
            assert held, f"claim failed: {claim}"

    def test_markdown_contains_tables_and_checklist(self, evaluation):
        text = evaluation.to_markdown()
        assert "| 7c | marketcetera | abrupt |" in text
        assert "## Figure 8" in text
        assert "- [x]" in text
        assert "- [ ]" not in text  # no failing claims

    def test_markdown_row_per_panel(self, evaluation):
        text = evaluation.to_markdown()
        for fig in evaluation.panels:
            assert f"| {fig} |" in text


class TestClaimsLogic:
    def test_failed_claim_renders_unchecked(self, evaluation):
        import copy

        # Tamper with a deep copy (the shared fixture must stay intact).
        broken = copy.deepcopy(evaluation)
        panel = broken.panels["7c"]
        # Force the ElasticRMI tracker to look terrible.
        for _ in range(100):
            panel.results["elasticrmi"].tracker.record(0, 100, 0)
        text = broken.to_markdown()
        assert "- [ ]" in text
