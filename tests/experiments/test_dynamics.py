"""Unit tests for the step-response analysis."""

import pytest

from repro.experiments.dynamics import (
    STEP_AT_MIN,
    StepResponse,
    step_response,
)


class TestStepResponse:
    def test_oracle_never_lags(self):
        r = step_response("paxos", "overprovisioning")
        assert r.worst_shortage == 0.0
        assert r.lag_min is not None and r.lag_min <= 10.0

    def test_elasticrmi_converges_quickly(self):
        r = step_response("paxos", "elasticrmi")
        assert r.lag_min is not None
        assert r.lag_min <= 15.0

    def test_requirement_matches_peak(self):
        from repro.experiments.appmodels import APP_MODELS
        from repro.experiments.harness import pattern_for

        app = APP_MODELS["paxos"]
        r = step_response("paxos", "overprovisioning")
        assert r.requirement == app.peak_req(pattern_for(app, "abrupt"))

    def test_result_is_a_value_object(self):
        r = StepResponse("x", 10, 210.0, 5.0, 0.0)
        with pytest.raises(AttributeError):
            r.lag_min = 1.0

    def test_step_time_matches_pattern_definition(self):
        """Minute 205 is where ABRUPT_SHAPE finishes its rapid increase."""
        from repro.workloads.patterns import ABRUPT_SHAPE

        assert any(minute == STEP_AT_MIN for minute, _ in ABRUPT_SHAPE)
