"""The cpu suite's family-normalized regression gate.

Thread-vs-process throughput ratios depend on the measuring machine's
core count (the committed baseline comes from a 1-core container; CI
runners have 4), so the cpu gate normalizes each record by *its
family's* anchor rather than one global anchor.  These tests pin that
contract: topology shifts between families never flag, drops within a
family do.
"""

from __future__ import annotations

import pytest

from repro.experiments.benchreport import (
    CPU_COMPARE_EXCLUDE,
    compare_cpu_reports,
)


def _report(throughputs: dict[str, float]) -> dict:
    return {
        "records": [
            {"name": name, "calls_per_sec": value}
            for name, value in throughputs.items()
        ]
    }


BASELINE = _report(
    {
        "cpu-thread-1ms": 900.0,
        "cpu-thread-5ms": 190.0,
        "cpu-thread-20ms": 44.0,
        "cpu-proc-1ms": 600.0,
        "cpu-proc-5ms": 115.0,
        "cpu-proc-20ms": 28.0,
        "cpu-aio-proc-5ms": 110.0,
        "cpu-pipe-1mib": 400.0,
        "cpu-shm-1mib": 410.0,
        "cpu-pipe-4mib": 60.0,
        "cpu-shm-4mib": 120.0,
    }
)


class TestCpuFamilyGate:
    def test_identical_reports_pass(self):
        result = compare_cpu_reports(BASELINE, BASELINE)
        assert result.ok
        assert result.regressions == []
        assert result.missing == []

    def test_cross_family_topology_shift_does_not_flag(self):
        """A 4-core runner speeds every process-family leg up ~4x while
        the GIL-serialised thread legs stay put — the exact cross-family
        drift the per-family anchors exist to ignore."""
        shifted = {
            r["name"]: r["calls_per_sec"] for r in BASELINE["records"]
        }
        for name in list(shifted):
            if name.startswith(("cpu-proc-", "cpu-aio-proc-")):
                shifted[name] *= 4.0
        result = compare_cpu_reports(BASELINE, _report(shifted))
        assert result.ok, result.lines

    def test_within_family_drop_flags(self):
        degraded = {
            r["name"]: r["calls_per_sec"] for r in BASELINE["records"]
        }
        degraded["cpu-shm-4mib"] *= 0.5  # shm win halved vs its anchor
        result = compare_cpu_reports(BASELINE, _report(degraded))
        assert not result.ok
        assert result.regressions == ["cpu-shm-4mib"]

    def test_uniform_machine_slowdown_does_not_flag(self):
        slower = {
            r["name"]: r["calls_per_sec"] * 0.4
            for r in BASELINE["records"]
        }
        result = compare_cpu_reports(BASELINE, _report(slower))
        assert result.ok, result.lines

    def test_excluded_leg_is_reported_but_not_gated(self):
        assert "cpu-proc-1ms" in CPU_COMPARE_EXCLUDE
        degraded = {
            r["name"]: r["calls_per_sec"] for r in BASELINE["records"]
        }
        degraded["cpu-proc-1ms"] *= 0.1
        result = compare_cpu_reports(BASELINE, _report(degraded))
        assert result.ok
        assert any(
            "cpu-proc-1ms" in line and "skipped" in line
            for line in result.lines
        )

    def test_missing_record_is_flagged(self):
        partial = {
            r["name"]: r["calls_per_sec"]
            for r in BASELINE["records"]
            if r["name"] != "cpu-shm-4mib"
        }
        result = compare_cpu_reports(BASELINE, _report(partial))
        assert not result.ok
        assert result.missing == ["cpu-shm-4mib"]

    def test_missing_anchor_raises(self):
        no_anchor = {
            r["name"]: r["calls_per_sec"]
            for r in BASELINE["records"]
            if r["name"] != "cpu-proc-5ms"
        }
        with pytest.raises(ValueError, match="cpu-proc-5ms"):
            compare_cpu_reports(BASELINE, _report(no_anchor))

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_cpu_reports(BASELINE, BASELINE, tolerance=1.5)
