"""Tests for sequential nodes and the DCS coordination recipes."""

import threading

import pytest

from repro.apps.dcs.recipes import Barrier, Counter, DistributedLock, LeaderElector
from repro.apps.dcs.service import CoordinationService


@pytest.fixture
def dcs(deploy):
    _, stub = deploy(CoordinationService)
    return stub


class TestSequentialNodes:
    def test_sequence_suffixes_increase(self, dcs):
        dcs.create("/q")
        first = dcs.create_sequential("/q/item-")
        second = dcs.create_sequential("/q/item-")
        assert first < second
        assert first.startswith("/q/item-")
        assert len(first.rsplit("-", 1)[1]) == 10  # zero-padded

    def test_sequence_never_reused_after_delete(self, dcs):
        dcs.create("/q")
        first = dcs.create_sequential("/q/item-")
        dcs.delete(first)
        second = dcs.create_sequential("/q/item-")
        assert second > first

    def test_sequences_are_per_parent(self, dcs):
        dcs.create("/a")
        dcs.create("/b")
        a1 = dcs.create_sequential("/a/n-")
        b1 = dcs.create_sequential("/b/n-")
        assert a1.rsplit("-", 1)[1] == b1.rsplit("-", 1)[1]

    def test_sequential_ephemeral_dies_with_session(self, dcs):
        dcs.create("/q")
        session = dcs.create_session()
        path = dcs.create_sequential(
            "/q/e-", ephemeral=True, session_id=session
        )
        assert dcs.exists(path)
        dcs.close_session(session)
        assert not dcs.exists(path)

    def test_sorted_children_reflect_creation_order(self, dcs):
        dcs.create("/q")
        created = [dcs.create_sequential("/q/n-") for _ in range(5)]
        names = sorted(dcs.get_children("/q"))
        assert [f"/q/{n}" for n in names] == created


class TestDistributedLock:
    def test_first_contender_acquires(self, dcs):
        session = dcs.create_session()
        lock = DistributedLock(dcs, "/locks/db", session)
        assert lock.try_acquire() is True
        assert lock.is_held()

    def test_second_contender_queues_fifo(self, dcs):
        s1, s2 = dcs.create_session(), dcs.create_session()
        lock1 = DistributedLock(dcs, "/locks/db", s1)
        lock2 = DistributedLock(dcs, "/locks/db", s2)
        assert lock1.try_acquire() is True
        assert lock2.try_acquire() is False
        assert lock2.queue_position() == 1

    def test_release_admits_next(self, dcs):
        s1, s2 = dcs.create_session(), dcs.create_session()
        lock1 = DistributedLock(dcs, "/locks/db", s1)
        lock2 = DistributedLock(dcs, "/locks/db", s2)
        lock1.try_acquire()
        lock2.try_acquire()
        lock1.release()
        assert lock2.is_held()

    def test_holder_crash_releases_via_session(self, dcs):
        s1, s2 = dcs.create_session(), dcs.create_session()
        lock1 = DistributedLock(dcs, "/locks/db", s1)
        lock2 = DistributedLock(dcs, "/locks/db", s2)
        lock1.try_acquire()
        lock2.try_acquire()
        dcs.close_session(s1)  # holder's session dies
        assert lock2.is_held()

    def test_release_is_idempotent(self, dcs):
        session = dcs.create_session()
        lock = DistributedLock(dcs, "/locks/db", session)
        lock.try_acquire()
        lock.release()
        lock.release()


class TestLeaderElector:
    def test_first_volunteer_leads(self, dcs):
        session = dcs.create_session()
        elector = LeaderElector(dcs, "/election", session, "node-a")
        elector.volunteer()
        assert elector.is_leader()
        assert elector.current_leader() == "node-a"

    def test_succession_order(self, dcs):
        sessions = [dcs.create_session() for _ in range(3)]
        electors = [
            LeaderElector(dcs, "/election", s, f"node-{i}")
            for i, s in enumerate(sessions)
        ]
        for e in electors:
            e.volunteer()
        assert electors[0].is_leader()
        electors[0].withdraw()
        assert electors[1].is_leader()
        assert electors[1].current_leader() == "node-1"

    def test_leader_session_death_promotes_next(self, dcs):
        s1, s2 = dcs.create_session(), dcs.create_session()
        first = LeaderElector(dcs, "/election", s1, "a")
        second = LeaderElector(dcs, "/election", s2, "b")
        first.volunteer()
        second.volunteer()
        dcs.close_session(s1)
        assert second.is_leader()

    def test_no_candidates_no_leader(self, dcs):
        session = dcs.create_session()
        elector = LeaderElector(dcs, "/election", session, "a")
        assert elector.current_leader() is None
        assert not elector.is_leader()


class TestBarrier:
    def test_opens_when_full(self, dcs):
        barrier = Barrier(dcs, "/barrier", parties=3)
        assert barrier.enter("a") is False
        assert barrier.enter("b") is False
        assert barrier.enter("c") is True
        assert barrier.is_open()

    def test_double_enter_is_idempotent(self, dcs):
        barrier = Barrier(dcs, "/barrier", parties=2)
        barrier.enter("a")
        barrier.enter("a")
        assert barrier.arrived() == 1
        assert not barrier.is_open()

    def test_invalid_parties_rejected(self, dcs):
        with pytest.raises(ValueError):
            Barrier(dcs, "/barrier", parties=0)


class TestCounter:
    def test_increment(self, dcs):
        counter = Counter(dcs, "/counter")
        assert counter.increment() == 1
        assert counter.increment(5) == 6
        assert counter.value() == 6

    def test_two_counter_handles_share_state(self, dcs):
        a = Counter(dcs, "/counter")
        b = Counter(dcs, "/counter")
        a.increment()
        assert b.value() == 1
        b.increment()
        assert a.value() == 2

    def test_concurrent_increments_on_live_pool(self):
        """The optimistic-retry path under genuine thread contention."""
        from repro.core.runtime import ElasticRuntime

        runtime = ElasticRuntime.local(nodes=4)
        try:
            runtime.new_pool(CoordinationService, name="dcs")
            stub = runtime.stub("dcs")
            counter = Counter(stub, "/hits")

            def worker():
                local = Counter(runtime.stub("dcs"), "/hits")
                for _ in range(25):
                    local.increment()

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert counter.value() == 100
        finally:
            runtime.shutdown()
