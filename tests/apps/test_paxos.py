"""Tests for the multi-Paxos replica pool: ballots, rounds, leadership,
replication, and safety under membership change and failure."""

import pytest

from repro.apps.paxos.messages import ZERO, Ballot
from repro.apps.paxos.replica import NoQuorumError, PaxosReplica
from repro.errors import ApplicationError


@pytest.fixture
def paxos(deploy):
    pool, stub = deploy(PaxosReplica)
    return pool, stub


class TestBallot:
    def test_ordering_by_number_then_uid(self):
        assert Ballot(1, 2) > Ballot(1, 1)
        assert Ballot(2, 1) > Ballot(1, 9)
        assert Ballot(1, 1) == Ballot(1, 1)

    def test_next_is_strictly_larger(self):
        b = Ballot(3, 2)
        assert b.next(1) > b
        assert b.next(1).proposer_uid == 1

    def test_zero_is_minimal(self):
        assert ZERO < Ballot(0, 1)


class TestConsensusRounds:
    def test_propose_chooses_and_applies(self, paxos):
        _, stub = paxos
        result = stub.propose({"op": "put", "key": "x", "value": 42})
        assert result["slot"] == 1
        assert result["result"] == 42

    def test_slots_are_consecutive(self, paxos):
        _, stub = paxos
        slots = [
            stub.propose({"op": "noop"})["slot"] for _ in range(5)
        ]
        assert slots == [1, 2, 3, 4, 5]

    def test_all_replicas_learn_chosen_values(self, paxos):
        pool, stub = paxos
        stub.propose({"op": "put", "key": "k", "value": "v"})
        for member in pool.active_members():
            assert member.instance.chosen_log()[1] == {
                "op": "put", "key": "k", "value": "v",
            }

    def test_state_machine_replicated_on_every_member(self, paxos):
        pool, stub = paxos
        stub.propose({"op": "put", "key": "color", "value": "red"})
        stub.propose({"op": "put", "key": "color", "value": "blue"})
        for member in pool.active_members():
            assert member.instance.read("color") == "blue"
            assert member.instance.applied_upto() == 2

    def test_incr_command(self, paxos):
        _, stub = paxos
        assert stub.propose({"op": "incr", "key": "c"})["result"] == 1
        assert stub.propose({"op": "incr", "key": "c", "by": 5})["result"] == 6

    def test_propose_via_follower_forwards_to_leader(self, paxos, runtime):
        pool, _ = paxos
        from repro.rmi.remote import Stub

        follower = pool.active_members()[-1]
        assert follower.uid != pool.sentinel().uid
        direct = Stub(runtime.transport, follower.ref())
        result = direct.propose({"op": "put", "key": "f", "value": 1})
        assert result["result"] == 1

    def test_rounds_counted(self, paxos, runtime):
        _, stub = paxos
        for _ in range(4):
            stub.propose({"op": "noop"})
        assert runtime.store.get("PaxosReplica$rounds_completed") == 4


class TestLeadershipAndSafety:
    def test_leader_is_sentinel(self, paxos):
        pool, _ = paxos
        leader = pool.active_members()[0].instance._leader_member()
        assert leader.uid == pool.sentinel().uid

    def test_acceptors_promise_monotonically(self, paxos):
        pool, stub = paxos
        stub.propose({"op": "noop"})
        member = pool.active_members()[1]
        promised_before = member.instance._promised
        from repro.apps.paxos.messages import Nack, Prepare

        stale = Prepare(ballot=ZERO, from_slot=1)
        response = member.instance._handle_paxos(stale)
        assert isinstance(response, Nack)
        assert member.instance._promised == promised_before

    def test_new_leader_inherits_accepted_values(self, paxos):
        """After the leader dies, the next leader must re-propose any
        value a quorum may have chosen — never overwrite it."""
        pool, stub = paxos
        stub.propose({"op": "put", "key": "sacred", "value": "v1"})
        old_leader = pool.sentinel()
        pool._terminate(old_leader)
        new_stub_target = pool.sentinel()
        from repro.rmi.remote import Stub

        direct = Stub(pool.services.transport, new_stub_target.ref())
        direct.propose({"op": "put", "key": "other", "value": "v2"})
        # The sacred value survives the leadership change on all members.
        for member in pool.active_members():
            assert member.instance.read("sacred") == "v1"

    def test_quorum_is_majority_of_active_members(self, paxos):
        pool, _ = paxos
        instance = pool.active_members()[0].instance
        assert instance._quorum() == len(pool.active_members()) // 2 + 1

    def test_no_quorum_when_too_many_members_dead(self, paxos, runtime, kernel):
        pool, stub = paxos
        stub.propose({"op": "noop"})  # establish leadership
        # Kill members until fewer than a quorum of the *original* group
        # can answer; the channel still lists them until detection, so
        # terminate explicitly to shrink the view, then block growth and
        # kill one more via transport to break quorum mid-round.
        members = pool.active_members()
        assert len(members) == 3
        # Terminate both followers: 1 of original 3 remains -> view of 1,
        # quorum over view(1) = 1, so proposals still succeed (elastic
        # quorum). This asserts the elastic-quorum behaviour:
        pool._terminate(members[1])
        pool._terminate(members[2])
        result = stub.propose({"op": "put", "key": "solo", "value": 1})
        assert result["result"] == 1


class TestMembershipChange:
    def test_consensus_survives_pool_growth(self, paxos, kernel):
        pool, stub = paxos
        stub.propose({"op": "put", "key": "a", "value": 1})
        pool.grow(2)
        kernel.run_until(kernel.clock.now() + 1.0)
        result = stub.propose({"op": "put", "key": "b", "value": 2})
        assert result["result"] == 2
        # New members learn subsequent values.
        newest = pool.active_members()[-1]
        assert newest.instance.read("b") == 2

    def test_consensus_survives_pool_shrink(self, paxos, kernel):
        pool, stub = paxos
        pool.grow(2)
        kernel.run_until(kernel.clock.now() + 1.0)
        stub.propose({"op": "put", "key": "pre", "value": 1})
        pool.shrink(2)
        kernel.run_until(kernel.clock.now() + 30.0)
        result = stub.propose({"op": "put", "key": "post", "value": 2})
        assert result["result"] == 2


class TestPaxosScaling:
    def test_rate_based_vote_prefers_odd_sizes(self, deploy, runtime):
        pool, _ = deploy(PaxosReplica)
        assert pool.size() == 3
        runtime.store.put("PaxosReplica$offered_rate", 6_000.0)
        vote = pool.active_members()[0].instance.change_pool_size()
        # 6000/(1200*0.88)=5.7 -> 6 wanted -> +3, but 6 is even -> +4 (7).
        assert vote == 4
        assert (pool.size() + vote) % 2 == 1

    def test_min_pool_size_is_three(self):
        replica = PaxosReplica()
        assert replica._ermi_config.min_pool_size == 3
