"""Tests for the DCS coordination service: namespace, total order,
sessions/ephemerals, and watches."""

import pytest

from repro.apps.dcs.service import (
    BadVersionError,
    CoordinationService,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
)
from repro.errors import ApplicationError


@pytest.fixture
def dcs(deploy):
    _, stub = deploy(CoordinationService)
    return stub


def cause_of(excinfo):
    return excinfo.value.cause


class TestNamespace:
    def test_create_and_get(self, dcs):
        dcs.create("/config", {"timeout": 30})
        record = dcs.get("/config")
        assert record["data"] == {"timeout": 30}
        assert record["version"] == 0

    def test_create_duplicate_raises(self, dcs):
        dcs.create("/dup")
        with pytest.raises(ApplicationError) as info:
            dcs.create("/dup")
        assert isinstance(cause_of(info), NodeExistsError)

    def test_create_requires_parent(self, dcs):
        with pytest.raises(ApplicationError) as info:
            dcs.create("/a/b/c")
        assert isinstance(cause_of(info), NoNodeError)

    def test_nested_creation(self, dcs):
        dcs.create("/a")
        dcs.create("/a/b")
        dcs.create("/a/b/c", "leaf")
        assert dcs.get("/a/b/c")["data"] == "leaf"

    def test_children_listed_sorted(self, dcs):
        dcs.create("/dir")
        dcs.create("/dir/zeta")
        dcs.create("/dir/alpha")
        assert dcs.get_children("/dir") == ["alpha", "zeta"]

    def test_children_of_root(self, dcs):
        dcs.create("/one")
        dcs.create("/two")
        assert set(dcs.get_children("/")) == {"one", "two"}

    def test_children_of_missing_node_raises(self, dcs):
        with pytest.raises(ApplicationError) as info:
            dcs.get_children("/ghost")
        assert isinstance(cause_of(info), NoNodeError)

    def test_exists(self, dcs):
        assert dcs.exists("/") is True
        assert dcs.exists("/nope") is False
        dcs.create("/yes")
        assert dcs.exists("/yes") is True

    def test_invalid_paths_rejected(self, dcs):
        for bad in ("no-slash", "/trailing/", "/dou//ble"):
            with pytest.raises(ApplicationError) as info:
                dcs.create(bad)
            assert isinstance(cause_of(info), ValueError)

    def test_get_missing_raises(self, dcs):
        with pytest.raises(ApplicationError) as info:
            dcs.get("/missing")
        assert isinstance(cause_of(info), NoNodeError)


class TestUpdatesAndVersions:
    def test_set_data_bumps_version(self, dcs):
        dcs.create("/n", "v0")
        dcs.set_data("/n", "v1")
        record = dcs.get("/n")
        assert record["data"] == "v1"
        assert record["version"] == 1

    def test_conditional_set_with_correct_version(self, dcs):
        dcs.create("/n", "v0")
        dcs.set_data("/n", "v1", version=0)
        assert dcs.get("/n")["data"] == "v1"

    def test_conditional_set_with_stale_version_raises(self, dcs):
        dcs.create("/n", "v0")
        dcs.set_data("/n", "v1")
        with pytest.raises(ApplicationError) as info:
            dcs.set_data("/n", "v2", version=0)
        assert isinstance(cause_of(info), BadVersionError)
        assert dcs.get("/n")["data"] == "v1"  # unchanged

    def test_delete(self, dcs):
        dcs.create("/gone")
        dcs.delete("/gone")
        assert not dcs.exists("/gone")

    def test_delete_with_children_raises(self, dcs):
        dcs.create("/p")
        dcs.create("/p/c")
        with pytest.raises(ApplicationError) as info:
            dcs.delete("/p")
        assert isinstance(cause_of(info), NotEmptyError)

    def test_delete_conditional_version(self, dcs):
        dcs.create("/n")
        dcs.set_data("/n", "x")
        with pytest.raises(ApplicationError) as info:
            dcs.delete("/n", version=0)
        assert isinstance(cause_of(info), BadVersionError)
        dcs.delete("/n", version=1)

    def test_delete_removes_from_parent_children(self, dcs):
        dcs.create("/d")
        dcs.create("/d/x")
        dcs.delete("/d/x")
        assert dcs.get_children("/d") == []


class TestTotalOrdering:
    def test_zxids_strictly_increase_across_updates(self, dcs):
        """Updates are totally ordered (paper section 5.2)."""
        z1 = dcs.create("/a")
        z2 = dcs.create("/b")
        z3 = dcs.set_data("/a", "x")
        assert z1 < z2 < z3

    def test_mzxid_tracks_latest_modification(self, dcs):
        dcs.create("/n")
        record0 = dcs.get("/n")
        dcs.set_data("/n", "x")
        record1 = dcs.get("/n")
        assert record1["mzxid"] > record0["mzxid"]
        assert record1["czxid"] == record0["czxid"]

    def test_order_holds_across_members(self, deploy):
        """Updates issued through different pool members still draw from
        one total order."""
        pool, stub = deploy(CoordinationService)
        zxids = [stub.create(f"/n{i}") for i in range(12)]
        assert zxids == sorted(zxids)
        assert len(set(zxids)) == 12
        served = {
            m.uid: m.skeleton.stats.total_calls()
            for m in pool.active_members()
        }
        assert all(count > 0 for count in served.values())


class TestSessionsAndEphemerals:
    def test_ephemeral_node_removed_on_session_close(self, dcs):
        session = dcs.create_session()
        dcs.create("/lock", ephemeral=True, session_id=session)
        removed = dcs.close_session(session)
        assert removed == ["/lock"]
        assert not dcs.exists("/lock")

    def test_persistent_nodes_survive_session_close(self, dcs):
        session = dcs.create_session()
        dcs.create("/keep")
        dcs.create("/drop", ephemeral=True, session_id=session)
        dcs.close_session(session)
        assert dcs.exists("/keep")

    def test_ephemeral_requires_session(self, dcs):
        with pytest.raises(ApplicationError) as info:
            dcs.create("/e", ephemeral=True)
        assert isinstance(cause_of(info), SessionExpiredError)

    def test_closed_session_cannot_create(self, dcs):
        session = dcs.create_session()
        dcs.close_session(session)
        with pytest.raises(ApplicationError) as info:
            dcs.create("/e", ephemeral=True, session_id=session)
        assert isinstance(cause_of(info), SessionExpiredError)

    def test_double_close_raises(self, dcs):
        session = dcs.create_session()
        dcs.close_session(session)
        with pytest.raises(ApplicationError) as info:
            dcs.close_session(session)
        assert isinstance(cause_of(info), SessionExpiredError)

    def test_ephemeral_nodes_cannot_have_children(self, dcs):
        session = dcs.create_session()
        dcs.create("/e", ephemeral=True, session_id=session)
        with pytest.raises(ApplicationError) as info:
            dcs.create("/e/child")
        assert isinstance(cause_of(info), NodeExistsError)

    def test_leader_election_recipe(self, dcs):
        """The classic usage: ephemeral lock node; the winner holds it
        until its session dies, then the next contender can take it."""
        s1, s2 = dcs.create_session(), dcs.create_session()
        dcs.create("/election", ephemeral=True, session_id=s1)
        with pytest.raises(ApplicationError):
            dcs.create("/election", ephemeral=True, session_id=s2)
        dcs.close_session(s1)
        dcs.create("/election", ephemeral=True, session_id=s2)  # now wins


class TestWatches:
    def test_watch_fires_on_change(self, dcs):
        dcs.create("/w")
        dcs.watch("/w", "client-1")
        dcs.set_data("/w", "new")
        events = dcs.poll_events("client-1")
        assert len(events) == 1
        assert events[0].path == "/w"
        assert events[0].kind == "changed"

    def test_watch_fires_on_delete(self, dcs):
        dcs.create("/w")
        dcs.watch("/w", "c")
        dcs.delete("/w")
        assert dcs.poll_events("c")[0].kind == "deleted"

    def test_watch_fires_on_create(self, dcs):
        dcs.watch("/future", "c")
        dcs.create("/future")
        assert dcs.poll_events("c")[0].kind == "created"

    def test_watch_is_one_shot(self, dcs):
        dcs.create("/w")
        dcs.watch("/w", "c")
        dcs.set_data("/w", "1")
        dcs.set_data("/w", "2")
        assert len(dcs.poll_events("c")) == 1

    def test_poll_drains_feed(self, dcs):
        dcs.create("/w")
        dcs.watch("/w", "c")
        dcs.set_data("/w", "1")
        dcs.poll_events("c")
        assert dcs.poll_events("c") == []

    def test_multiple_watchers_all_notified(self, dcs):
        dcs.create("/w")
        dcs.watch("/w", "a")
        dcs.watch("/w", "b")
        dcs.set_data("/w", "x")
        assert len(dcs.poll_events("a")) == 1
        assert len(dcs.poll_events("b")) == 1

    def test_events_ordered_by_zxid(self, dcs):
        dcs.create("/w1")
        dcs.create("/w2")
        dcs.watch("/w1", "c")
        dcs.watch("/w2", "c")
        dcs.set_data("/w1", "x")
        dcs.set_data("/w2", "y")
        events = dcs.poll_events("c")
        assert [e.zxid for e in events] == sorted(e.zxid for e in events)


class TestDcsScaling:
    def test_rate_based_vote(self, deploy, runtime):
        pool, _ = deploy(CoordinationService)
        runtime.store.put("CoordinationService$offered_rate", 30_000.0)
        vote = pool.active_members()[0].instance.change_pool_size()
        # 30000/(3500*0.83)=10.3 -> 11 wanted, have 2 -> clamped to +8.
        assert vote == 8

    def test_updates_counter_shared(self, dcs, runtime):
        dcs.create("/a")
        dcs.set_data("/a", 1)
        dcs.delete("/a")
        assert runtime.store.get("CoordinationService$updates_total") == 3
