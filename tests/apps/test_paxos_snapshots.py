"""Tests for Paxos snapshot catch-up and log compaction."""

import pytest

from repro.apps.paxos.replica import PaxosReplica


@pytest.fixture
def paxos(deploy):
    pool, stub = deploy(PaxosReplica)
    return pool, stub


class TestSnapshotCatchup:
    def test_joiner_installs_state_without_full_log(self, paxos, kernel):
        pool, stub = paxos
        for i in range(10):
            stub.propose({"op": "put", "key": f"k{i}", "value": i})
        # Compact every existing member's log: catch-up must now come
        # from snapshots, not raw chosen entries.
        for member in pool.active_members():
            dropped = member.instance.compact()
            assert dropped == 10
        pool.grow(1)
        kernel.run_until(kernel.clock.now() + 1.0)
        newest = pool.active_members()[-1]
        assert newest.instance.applied_upto() == 10
        for i in range(10):
            assert newest.instance.read(f"k{i}") == i

    def test_joiner_merges_uncompacted_tail(self, paxos, kernel):
        pool, stub = paxos
        stub.propose({"op": "put", "key": "a", "value": 1})
        stub.propose({"op": "put", "key": "b", "value": 2})
        pool.grow(1)
        kernel.run_until(kernel.clock.now() + 1.0)
        newest = pool.active_members()[-1]
        assert newest.instance.read("a") == 1
        assert newest.instance.read("b") == 2

    def test_joined_member_participates_in_new_rounds(self, paxos, kernel):
        pool, stub = paxos
        stub.propose({"op": "noop"})
        for member in pool.active_members():
            member.instance.compact()
        pool.grow(2)
        kernel.run_until(kernel.clock.now() + 1.0)
        result = stub.propose({"op": "put", "key": "post", "value": "x"})
        newest = pool.active_members()[-1]
        assert newest.instance.read("post") == "x"
        assert result["result"] == "x"


class TestCompaction:
    def test_compact_drops_applied_entries(self, paxos):
        pool, stub = paxos
        for i in range(5):
            stub.propose({"op": "incr", "key": "n"})
        member = pool.active_members()[0]
        assert len(member.instance.chosen_log()) == 5
        dropped = member.instance.compact()
        assert dropped == 5
        assert member.instance.chosen_log() == {}

    def test_compact_preserves_state(self, paxos):
        pool, stub = paxos
        for i in range(5):
            stub.propose({"op": "incr", "key": "n"})
        member = pool.active_members()[0]
        member.instance.compact()
        assert member.instance.read("n") == 5
        assert member.instance.applied_upto() == 5

    def test_keep_slots_retains_a_tail(self, paxos):
        pool, stub = paxos
        for i in range(10):
            stub.propose({"op": "noop"})
        member = pool.active_members()[0]
        member.instance.compact(keep_slots=3)
        assert sorted(member.instance.chosen_log()) == [8, 9, 10]

    def test_negative_keep_slots_rejected(self, paxos):
        pool, _ = paxos
        with pytest.raises(ValueError):
            pool.active_members()[0].instance.compact(keep_slots=-1)

    def test_consensus_continues_after_compaction(self, paxos):
        pool, stub = paxos
        stub.propose({"op": "incr", "key": "n"})
        for member in pool.active_members():
            member.instance.compact()
        assert stub.propose({"op": "incr", "key": "n"})["result"] == 2
