"""Tests for the order execution layer: venues, fills, and lifecycle."""

import pytest

from repro.apps.marketcetera.execution import (
    MarketSimulator,
    TradingSession,
    reference_price,
)
from repro.apps.marketcetera.orders import Order, OrderType, Side
from repro.apps.marketcetera.router import OrderRouter


def market_order(order_id="m-1", symbol="AAPL", qty=100):
    return Order(order_id, "t", symbol, Side.BUY, OrderType.MARKET, qty)


def limit_order(order_id, symbol, side, qty, price):
    return Order(order_id, "t", symbol, side, OrderType.LIMIT, qty, price)


class TestReferencePrice:
    def test_deterministic(self):
        assert reference_price("AAPL") == reference_price("AAPL")

    def test_symbols_differ(self):
        assert reference_price("AAPL") != reference_price("MSFT")

    def test_positive(self):
        for symbol in ("AAPL", "GS", "XOM", "ZZZZ"):
            assert reference_price(symbol) >= 20.0


class TestMarketSimulator:
    def test_market_order_fills_immediately(self):
        venue = MarketSimulator("NYSE")
        report = venue.execute(market_order(qty=100))
        assert report.status == "filled"
        assert report.leaves_quantity == 0
        assert sum(f.quantity for f in report.fills) == 100

    def test_large_order_fills_partially(self):
        venue = MarketSimulator("NYSE", liquidity_per_round=300)
        report = venue.execute(market_order(qty=1000))
        assert report.status == "partial"
        assert report.leaves_quantity == 700
        assert report.fills[0].quantity == 300

    def test_marketable_limit_fills_at_limit_price(self):
        price = reference_price("AAPL")
        order = limit_order("l-1", "AAPL", Side.BUY, 100, price * 1.1)
        report = MarketSimulator("NYSE").execute(order)
        assert report.status == "filled"
        assert report.fills[0].price == order.price

    def test_unmarketable_limit_stays_working(self):
        price = reference_price("AAPL")
        order = limit_order("l-2", "AAPL", Side.BUY, 100, price * 0.5)
        report = MarketSimulator("NYSE").execute(order)
        assert report.status == "working"
        assert report.fills == ()
        assert report.leaves_quantity == 100

    def test_sell_limit_crossing_logic(self):
        price = reference_price("GS")
        low_ask = limit_order("s-1", "GS", Side.SELL, 100, price * 0.5)
        high_ask = limit_order("s-2", "GS", Side.SELL, 100, price * 2.0)
        venue = MarketSimulator("NYSE")
        assert venue.execute(low_ask).status == "filled"
        assert venue.execute(high_ask).status == "working"

    def test_exec_ids_unique(self):
        venue = MarketSimulator("NYSE")
        a = venue.execute(market_order("a"))
        b = venue.execute(market_order("b"))
        assert a.fills[0].exec_id != b.fills[0].exec_id

    def test_already_filled_order_reports_filled(self):
        venue = MarketSimulator("NYSE")
        report = venue.execute(market_order(qty=100), leaves_quantity=0)
        assert report.status == "filled"
        assert report.fills == ()

    def test_invalid_liquidity_rejected(self):
        with pytest.raises(ValueError):
            MarketSimulator("NYSE", liquidity_per_round=0)


class TestTradingSession:
    @pytest.fixture
    def session(self, deploy):
        _, stub = deploy(OrderRouter)
        return TradingSession(stub, liquidity_per_round=400)

    def test_trade_routes_and_fills(self, session):
        report = session.trade(market_order("t-1", qty=100))
        assert report.status == "filled"
        record = session.router.order_status("t-1")
        assert record["status"] == "filled"
        assert record["filled_quantity"] == 100

    def test_partial_fill_lifecycle(self, session):
        report = session.trade(market_order("t-2", qty=1000))
        assert report.status == "partial"
        assert session.open_order_count() == 1
        # Keep working the order until liquidity absorbs it.
        rounds = 0
        while session.open_order_count() and rounds < 10:
            session.work_open_orders()
            rounds += 1
        assert session.open_order_count() == 0
        record = session.router.order_status("t-2")
        assert record["status"] == "filled"
        assert record["filled_quantity"] == 1000
        assert len(record["fills"]) == 3  # 400 + 400 + 200

    def test_working_limit_order_persists_state(self, session):
        price = reference_price("MSFT")
        order = limit_order("t-3", "MSFT", Side.BUY, 100, price * 0.5)
        report = session.trade(order)
        assert report.status == "working"
        record = session.router.order_status("t-3")
        assert record["status"] == "working"
        assert record["filled_quantity"] == 0

    def test_fills_recorded_on_both_replicas(self, session, runtime):
        session.trade(market_order("t-4", qty=50))
        r0 = runtime.store.get("mkt/orders/t-4/r0")
        r1 = runtime.store.get("mkt/orders/t-4/r1")
        assert r0["fills"] == r1["fills"]
        assert r0["status"] == "filled"

    def test_report_for_unknown_order_rejected(self, session):
        from repro.apps.marketcetera.router import RejectedOrderError
        from repro.errors import ApplicationError

        with pytest.raises(ApplicationError) as info:
            session.router.report_execution("ghost", "filled", [])
        assert isinstance(info.value.cause, RejectedOrderError)

    def test_session_fill_ledger(self, session):
        session.trade(market_order("t-5", qty=100))
        session.trade(market_order("t-6", qty=100))
        assert len(session.fills) == 2
        assert {f.order_id for f in session.fills} == {"t-5", "t-6"}
