"""Fixtures for application tests: a simulated runtime with instant
provisioning, and helpers to deploy an app and get a client stub."""

from __future__ import annotations

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    return ElasticRuntime.simulated(
        kernel, nodes=12, slices_per_node=4, provisioner=InstantProvisioner()
    )


@pytest.fixture
def deploy(runtime, kernel):
    """deploy(cls, **kw) -> (pool, stub), with activations settled."""

    def _deploy(cls, *args, **kwargs):
        pool = runtime.new_pool(cls, *args, **kwargs)
        kernel.run_until(kernel.clock.now() + 1.0)
        stub = runtime.stub(pool.name)
        return pool, stub

    return _deploy
