"""Tests for the Hedwig-style pub/sub hub pool."""

import pytest

from repro.apps.hedwig.hub import RETENTION, Hub
from repro.errors import ApplicationError


@pytest.fixture
def hub(deploy):
    pool, stub = deploy(Hub)
    return pool, stub


class TestPublish:
    def test_publish_assigns_increasing_seq(self, hub):
        _, stub = hub
        assert stub.publish("news", "a") == 1
        assert stub.publish("news", "b") == 2

    def test_topics_have_independent_sequences(self, hub):
        _, stub = hub
        stub.publish("t1", "x")
        assert stub.publish("t2", "y") == 1

    def test_log_retention_bounded(self, hub, runtime):
        _, stub = hub
        for i in range(RETENTION + 50):
            stub.publish("busy", i)
        log = runtime.store.get("hw/topics/busy/log")
        assert len(log) == RETENTION
        assert log[0].seq == 51  # oldest trimmed

    def test_published_counter_shared(self, hub, runtime):
        _, stub = hub
        for i in range(5):
            stub.publish("t", i)
        assert runtime.store.get("Hub$published_total") == 5


class TestSubscribeConsume:
    def test_subscriber_gets_messages_after_subscribe(self, hub):
        _, stub = hub
        stub.publish("t", "before")      # not replayed
        stub.subscribe("t", "sub-1")
        stub.publish("t", "after-1")
        stub.publish("t", "after-2")
        batch = stub.consume("t", "sub-1")
        assert [m.payload for m in batch] == ["after-1", "after-2"]

    def test_at_most_once_no_redelivery(self, hub):
        """The cursor advances before delivery: consuming twice never
        yields the same message twice."""
        _, stub = hub
        stub.subscribe("t", "s")
        stub.publish("t", "only-once")
        first = stub.consume("t", "s")
        second = stub.consume("t", "s")
        assert [m.payload for m in first] == ["only-once"]
        assert second == []

    def test_consume_respects_max_messages(self, hub):
        _, stub = hub
        stub.subscribe("t", "s")
        for i in range(10):
            stub.publish("t", i)
        batch = stub.consume("t", "s", max_messages=4)
        assert [m.payload for m in batch] == [0, 1, 2, 3]
        rest = stub.consume("t", "s", max_messages=100)
        assert [m.payload for m in rest] == [4, 5, 6, 7, 8, 9]

    def test_independent_subscriber_cursors(self, hub):
        _, stub = hub
        stub.subscribe("t", "fast")
        stub.subscribe("t", "slow")
        stub.publish("t", "m1")
        assert len(stub.consume("t", "fast")) == 1
        assert len(stub.consume("t", "slow")) == 1

    def test_consume_without_subscription_raises(self, hub):
        _, stub = hub
        stub.publish("t", "m")
        with pytest.raises(ApplicationError) as info:
            stub.consume("t", "ghost")
        assert isinstance(info.value.cause, KeyError)

    def test_unsubscribe(self, hub):
        _, stub = hub
        stub.subscribe("t", "s")
        assert stub.unsubscribe("t", "s") is True
        assert stub.unsubscribe("t", "s") is False


class TestBacklog:
    def test_backlog_counts_undelivered(self, hub):
        _, stub = hub
        stub.subscribe("t", "s")
        for i in range(7):
            stub.publish("t", i)
        assert stub.backlog("t") == 7
        stub.consume("t", "s", max_messages=3)
        assert stub.backlog("t") == 4

    def test_backlog_uses_laggiest_subscriber(self, hub):
        _, stub = hub
        stub.subscribe("t", "fast")
        stub.subscribe("t", "slow")
        for i in range(5):
            stub.publish("t", i)
        stub.consume("t", "fast")
        assert stub.backlog("t") == 5  # slow has consumed nothing

    def test_no_subscribers_no_backlog(self, hub):
        _, stub = hub
        stub.publish("t", "m")
        assert stub.backlog("t") == 0

    def test_topic_stats(self, hub, runtime):
        pool, stub = hub
        stub.subscribe("t", "s")
        stub.publish("t", "m")
        stats = stub.topic_stats("t")
        assert stats["seq"] == 1
        assert stats["subscribers"] == 1
        assert stats["backlog"] == 1
        assert stats["owner"] in {m.uid for m in pool.active_members()}


class TestTopicOwnership:
    def test_ownership_partitioned_across_members(self, deploy):
        pool, stub = deploy(Hub, max_size=8)
        pool.grow(2)
        owners = set()
        for i in range(40):
            owners.add(stub.topic_stats(f"topic-{i}")["owner"])
        assert len(owners) > 1  # topics spread over hubs

    def test_ownership_stable_for_fixed_membership(self, hub):
        _, stub = hub
        first = stub.topic_stats("stable-topic")["owner"]
        second = stub.topic_stats("stable-topic")["owner"]
        assert first == second

    def test_strict_ownership_rejects_wrong_hub(self, deploy):
        from repro.apps.hedwig.hub import TopicOwnershipError
        from repro.rmi.remote import Stub

        pool, stub = deploy(Hub, True)  # strict_ownership=True
        # Find a topic and a member that does NOT own it.
        members = pool.active_members()
        owner_uid = members[0].instance.owner_uid("some-topic")
        wrong = next(m for m in members if m.uid != owner_uid)
        direct = Stub(pool.services.transport, wrong.ref())
        with pytest.raises(ApplicationError) as info:
            direct.publish("some-topic", "m")
        assert isinstance(info.value.cause, TopicOwnershipError)


class TestHedwigScaling:
    def test_rate_based_vote(self, deploy, runtime):
        pool, _ = deploy(Hub)
        runtime.store.put("Hub$offered_rate", 6_000.0)
        vote = pool.active_members()[0].instance.change_pool_size()
        # 6000 / (1500 * 0.75) = 5.3 -> 6 wanted, have 2 -> +4
        assert vote == 4

    def test_backlog_boosts_growth(self, deploy, runtime):
        pool, _ = deploy(Hub)
        runtime.store.put("Hub$offered_rate", 6_000.0)
        runtime.store.put("hw/stats/backlog", 10_000)
        vote = pool.active_members()[0].instance.change_pool_size()
        assert vote == 5  # one extra for the backlog
