"""Tests for cross-region Hedwig federation."""

import pytest

from repro.apps.hedwig.federation import Envelope, HedwigFederation
from repro.apps.hedwig.hub import Hub
from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel


@pytest.fixture
def two_regions():
    """Two independent regions: separate kernels, runtimes, and stores."""
    clients = {}
    runtimes = []
    for name in ("us", "eu"):
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel, nodes=4, provisioner=InstantProvisioner()
        )
        runtime.new_pool(Hub, name=f"hubs-{name}")
        kernel.run_until(1.0)
        clients[name] = runtime.stub(f"hubs-{name}")
        runtimes.append(runtime)
    federation = HedwigFederation()
    for name, client in clients.items():
        federation.add_region(name, client)
    return federation, clients


class TestFederationSetup:
    def test_regions_listed(self, two_regions):
        federation, _ = two_regions
        assert federation.regions() == ["eu", "us"]

    def test_duplicate_region_rejected(self, two_regions):
        federation, clients = two_regions
        with pytest.raises(ValueError):
            federation.add_region("us", clients["us"])

    def test_unknown_region_rejected(self, two_regions):
        federation, _ = two_regions
        with pytest.raises(KeyError):
            federation.publish("mars", "t", "x")

    def test_connect_topic_is_idempotent(self, two_regions):
        federation, _ = two_regions
        federation.connect_topic("news")
        federation.connect_topic("news")


class TestCrossRegionDelivery:
    def test_message_crosses_regions(self, two_regions):
        federation, _ = two_regions
        federation.connect_topic("news")
        federation.subscribe("eu", "news", "eu-reader")
        federation.publish("us", "news", "hello from us")
        assert federation.pump() == 1
        got = federation.consume("eu", "news", "eu-reader")
        assert got == ["hello from us"]

    def test_local_subscribers_also_receive(self, two_regions):
        federation, _ = two_regions
        federation.connect_topic("news")
        federation.subscribe("us", "news", "us-reader")
        federation.publish("us", "news", "local")
        got = federation.consume("us", "news", "us-reader")
        assert got == ["local"]

    def test_no_relay_loop(self, two_regions):
        """A relayed message must never bounce back to its origin."""
        federation, _ = two_regions
        federation.connect_topic("news")
        federation.subscribe("us", "news", "us-reader")
        federation.publish("us", "news", "once")
        federation.consume("us", "news", "us-reader")  # drain the original
        assert federation.pump() == 1   # us -> eu
        assert federation.pump() == 0   # eu relay sees foreign origin: stop
        assert federation.consume("us", "news", "us-reader") == []

    def test_bidirectional_traffic(self, two_regions):
        federation, _ = two_regions
        federation.connect_topic("chat")
        federation.subscribe("us", "chat", "alice")
        federation.subscribe("eu", "chat", "bob")
        federation.publish("us", "chat", "hi bob")
        federation.publish("eu", "chat", "hi alice")
        federation.pump()
        # Each side sees both messages (its local one plus the relayed).
        assert set(federation.consume("us", "chat", "alice")) == {
            "hi bob", "hi alice",
        }
        assert set(federation.consume("eu", "chat", "bob")) == {
            "hi bob", "hi alice",
        }

    def test_three_regions_full_mesh(self):
        clients = {}
        for name in ("us", "eu", "ap"):
            kernel = Kernel()
            runtime = ElasticRuntime.simulated(
                kernel, nodes=4, provisioner=InstantProvisioner()
            )
            runtime.new_pool(Hub, name=f"hubs-{name}")
            kernel.run_until(1.0)
            clients[name] = runtime.stub(f"hubs-{name}")
        federation = HedwigFederation()
        for name, client in clients.items():
            federation.add_region(name, client)
        federation.connect_topic("global")
        for name in clients:
            federation.subscribe(name, "global", f"{name}-reader")
        federation.publish("ap", "global", "from-ap")
        assert federation.pump() == 2  # ap -> us, ap -> eu
        for name in clients:
            assert federation.consume(name, "global", f"{name}-reader") == [
                "from-ap"
            ]

    def test_unfederated_topics_stay_local(self, two_regions):
        federation, clients = two_regions
        federation.connect_topic("federated")
        clients["us"].subscribe("private", "us-reader")
        clients["us"].publish("private", "secret")
        assert federation.pump() == 0
        batch = clients["us"].consume("private", "us-reader")
        assert [m.payload for m in batch] == ["secret"]

    def test_at_most_once_across_regions(self, two_regions):
        federation, _ = two_regions
        federation.connect_topic("news")
        federation.subscribe("eu", "news", "r")
        federation.publish("us", "news", "m1")
        federation.pump()
        assert federation.consume("eu", "news", "r") == ["m1"]
        federation.pump()
        assert federation.consume("eu", "news", "r") == []

    def test_relay_counter(self, two_regions):
        federation, _ = two_regions
        federation.connect_topic("t")
        for i in range(5):
            federation.publish("us", "t", i)
        federation.pump()
        assert federation.relayed_total == 5


class TestEnvelope:
    def test_envelope_is_frozen_value(self):
        e = Envelope(origin="us", payload={"a": 1})
        assert e == Envelope("us", {"a": 1})
        with pytest.raises(AttributeError):
            e.origin = "eu"
