"""Live-mode (threads, wall clock) smoke tests for all four evaluation
applications — the deployment style the examples use."""

import random

import pytest

from repro.apps.dcs import CoordinationService
from repro.apps.hedwig import Hub
from repro.apps.marketcetera import OrderGenerator, OrderRouter
from repro.apps.paxos import PaxosReplica
from repro.core.runtime import ElasticRuntime


@pytest.fixture
def live():
    runtime = ElasticRuntime.local(nodes=8)
    yield runtime
    runtime.shutdown()


class TestMarketceteraLive:
    def test_order_stream_routes_and_persists(self, live):
        live.new_pool(OrderRouter, name="router")
        stub = live.stub("router")
        generator = OrderGenerator(random.Random(11))
        acks = [stub.submit_order(o) for o in generator.batch(25)]
        assert len(acks) == 25
        assert stub.routed_count() == 25
        record = stub.order_status(acks[0].order_id)
        assert record["status"] == "routed"


class TestHedwigLive:
    def test_publish_consume_cycle(self, live):
        live.new_pool(Hub, name="hubs")
        hub = live.stub("hubs")
        hub.subscribe("events", "sub")
        for i in range(15):
            hub.publish("events", f"e{i}")
        got = hub.consume("events", "sub", max_messages=100)
        assert [m.payload for m in got] == [f"e{i}" for i in range(15)]
        assert hub.backlog("events") == 0


class TestPaxosLive:
    def test_consensus_over_threaded_transport(self, live):
        pool = live.new_pool(PaxosReplica, name="paxos")
        client = live.stub("paxos")
        for i in range(5):
            result = client.propose({"op": "incr", "key": "n"})
            assert result["result"] == i + 1
        reads = {m.uid: m.instance.read("n") for m in pool.active_members()}
        assert set(reads.values()) == {5}

    def test_concurrent_proposers_serialize(self, live):
        import threading

        live.new_pool(PaxosReplica, name="paxos2")
        results = []
        lock = threading.Lock()

        def propose_many(n):
            client = live.stub("paxos2", caller=f"c{n}")
            for _ in range(10):
                r = client.propose({"op": "incr", "key": "c"})
                with lock:
                    results.append(r["slot"])

        threads = [
            threading.Thread(target=propose_many, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 30 proposals -> 30 distinct slots (consensus serialized them).
        assert len(set(results)) == 30


class TestDcsLive:
    def test_namespace_operations(self, live):
        live.new_pool(CoordinationService, name="dcs")
        dcs = live.stub("dcs")
        dcs.create("/app")
        dcs.create("/app/config", {"v": 1})
        zxid = dcs.set_data("/app/config", {"v": 2})
        assert zxid > 0
        assert dcs.get("/app/config")["data"] == {"v": 2}
        assert dcs.get_children("/app") == ["config"]

    def test_concurrent_creates_get_distinct_zxids(self, live):
        import threading

        live.new_pool(CoordinationService, name="dcs2")
        zxids = []
        lock = threading.Lock()

        def creator(n):
            dcs = live.stub("dcs2", caller=f"w{n}")
            for i in range(10):
                z = dcs.create(f"/n{n}-{i}")
                with lock:
                    zxids.append(z)

        threads = [
            threading.Thread(target=creator, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(zxids)) == 40  # total order: no duplicate zxids
