"""Tests for the Marketcetera-style order router."""

import random

import pytest

from repro.apps.marketcetera.orders import (
    Order,
    OrderGenerator,
    OrderType,
    Side,
)
from repro.apps.marketcetera.router import (
    DESTINATIONS,
    OrderRouter,
    RejectedOrderError,
)
from repro.errors import ApplicationError


def limit_order(order_id="o-1", symbol="AAPL", qty=100, price=150.0):
    return Order(
        order_id=order_id,
        trader="trader-1",
        symbol=symbol,
        side=Side.BUY,
        order_type=OrderType.LIMIT,
        quantity=qty,
        price=price,
    )


class TestOrderModel:
    def test_valid_limit_order(self):
        limit_order().validate()

    def test_market_order_must_not_have_price(self):
        order = Order("o", "t", "AAPL", Side.SELL, OrderType.MARKET, 100, 10.0)
        with pytest.raises(ValueError):
            order.validate()

    def test_limit_order_needs_price(self):
        order = Order("o", "t", "AAPL", Side.BUY, OrderType.LIMIT, 100, None)
        with pytest.raises(ValueError):
            order.validate()

    def test_non_positive_quantity_rejected(self):
        with pytest.raises(ValueError):
            limit_order(qty=0).validate()

    def test_bad_symbol_rejected(self):
        with pytest.raises(ValueError):
            limit_order(symbol="123!").validate()


class TestOrderGenerator:
    def test_generates_valid_orders(self):
        gen = OrderGenerator(random.Random(1))
        for order in gen.batch(200):
            order.validate()

    def test_order_ids_unique(self):
        gen = OrderGenerator(random.Random(1))
        ids = [o.order_id for o in gen.batch(100)]
        assert len(set(ids)) == 100

    def test_hot_symbol_bias(self):
        gen = OrderGenerator(random.Random(1), hot_symbol_bias=0.9)
        orders = gen.batch(300)
        hot = sum(1 for o in orders if o.symbol == gen.symbols[0])
        assert hot > 240


class TestRouting:
    def test_submit_returns_ack_with_destination(self, deploy):
        _, stub = deploy(OrderRouter)
        ack = stub.submit_order(limit_order())
        assert ack.status == "routed"
        assert ack.destination in DESTINATIONS

    def test_order_persisted_on_two_nodes(self, deploy, runtime):
        """Paper section 5.2: for fault tolerance, the order is persisted
        on two nodes."""
        _, stub = deploy(OrderRouter)
        ack = stub.submit_order(limit_order("o-2n"))
        assert len(ack.replicas) == 2
        assert len(set(ack.replicas)) == 2
        for key in ack.replicas:
            assert runtime.store.get(key)["order_id"] == "o-2n"

    def test_routing_is_deterministic_per_symbol(self, deploy):
        _, stub = deploy(OrderRouter)
        a = stub.submit_order(limit_order("a", symbol="AAPL"))
        b = stub.submit_order(limit_order("b", symbol="AAPL"))
        assert a.destination == b.destination

    def test_invalid_order_rejected(self, deploy):
        _, stub = deploy(OrderRouter)
        bad = Order("o", "t", "AAPL", Side.BUY, OrderType.LIMIT, -5, 10.0)
        with pytest.raises(ApplicationError) as info:
            stub.submit_order(bad)
        assert isinstance(info.value.cause, RejectedOrderError)

    def test_rejection_counted(self, deploy, runtime):
        _, stub = deploy(OrderRouter)
        bad = Order("o", "t", "AAPL", Side.BUY, OrderType.LIMIT, -5, 10.0)
        with pytest.raises(ApplicationError):
            stub.submit_order(bad)
        assert runtime.store.get("OrderRouter$orders_rejected") == 1

    def test_routed_counter_shared_across_members(self, deploy, runtime):
        _, stub = deploy(OrderRouter)
        gen = OrderGenerator(random.Random(2))
        for order in gen.batch(20):
            stub.submit_order(order)
        assert stub.routed_count() == 20

    def test_order_status_roundtrip(self, deploy):
        _, stub = deploy(OrderRouter)
        stub.submit_order(limit_order("o-status", symbol="GS"))
        record = stub.order_status("o-status")
        assert record["symbol"] == "GS"
        assert record["status"] == "routed"

    def test_status_of_unknown_order_raises(self, deploy):
        _, stub = deploy(OrderRouter)
        with pytest.raises(ApplicationError) as info:
            stub.order_status("nope")
        assert isinstance(info.value.cause, RejectedOrderError)

    def test_cancel_removes_both_replicas(self, deploy, runtime):
        _, stub = deploy(OrderRouter)
        ack = stub.submit_order(limit_order("o-cxl"))
        assert stub.cancel_order("o-cxl") is True
        for key in ack.replicas:
            assert not runtime.store.exists(key)

    def test_cancel_is_idempotent(self, deploy):
        _, stub = deploy(OrderRouter)
        stub.submit_order(limit_order("o-idem"))
        assert stub.cancel_order("o-idem") is True
        assert stub.cancel_order("o-idem") is False

    def test_orders_spread_across_members(self, deploy):
        pool, stub = deploy(OrderRouter)
        gen = OrderGenerator(random.Random(3))
        for order in gen.batch(20):
            stub.submit_order(order)
        served = [
            m.skeleton.stats.snapshot().get("submit_order")
            for m in pool.active_members()
        ]
        assert all(s is not None and s.calls > 0 for s in served)


class TestFineGrainedScaling:
    def test_rate_hint_drives_vote(self, deploy, runtime):
        pool, _ = deploy(OrderRouter)
        runtime.store.put("OrderRouter$offered_rate", 10_000.0)
        member = pool.active_members()[0]
        vote = member.instance.change_pool_size()
        # 10k / (2000 * 0.81) = 6.2 -> 7 members wanted, have 2.
        assert vote == 5

    def test_contention_guard_blocks_growth(self, deploy, runtime):
        """Figure 5: >50% lock-acquisition failures -> do not grow."""
        pool, _ = deploy(OrderRouter)
        runtime.store.put("OrderRouter$offered_rate", 10_000.0)
        runtime.store.put("OrderRouter$lock_acq_failures", 60.0)
        member = pool.active_members()[0]
        assert member.instance.change_pool_size() == 0

    def test_guard_does_not_block_shrink(self, deploy, runtime):
        pool, _ = deploy(OrderRouter)
        pool.grow(4)
        runtime.store.put("OrderRouter$offered_rate", 100.0)
        runtime.store.put("OrderRouter$lock_acq_failures", 90.0)
        member = pool.active_members()[0]
        assert member.instance.change_pool_size() < 0

    def test_overrides_change_pool_size(self):
        assert OrderRouter.overrides_change_pool_size()
