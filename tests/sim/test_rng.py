"""Tests for deterministic named random streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_and_name_reproduce(self):
        a = RngStreams(7).stream("arrivals")
        b = RngStreams(7).stream("arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_draws_on_one_stream_do_not_perturb_another(self):
        control = RngStreams(3)
        expected = [control.stream("b").random() for _ in range(3)]

        perturbed = RngStreams(3)
        perturbed.stream("a").random()  # extra draw on a different stream
        actual = [perturbed.stream("b").random() for _ in range(3)]
        assert actual == expected

    def test_spawn_derives_independent_factory(self):
        parent = RngStreams(5)
        child1 = parent.spawn("exp1")
        child2 = parent.spawn("exp2")
        assert child1.seed != child2.seed
        assert child1.stream("x").random() != child2.stream("x").random()

    def test_spawn_is_reproducible(self):
        a = RngStreams(5).spawn("e").stream("x").random()
        b = RngStreams(5).spawn("e").stream("x").random()
        assert a == b
