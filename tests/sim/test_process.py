"""Tests for generator-based processes and one-shot events."""

import pytest

from repro.sim.process import Event, Process, Timeout


class TestTimeout:
    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Timeout(-0.1)

    def test_zero_delay_allowed(self):
        assert Timeout(0.0).delay == 0.0


class TestEvent:
    def test_not_triggered_initially(self, kernel):
        assert not Event(kernel).triggered

    def test_value_before_trigger_raises(self, kernel):
        with pytest.raises(RuntimeError):
            Event(kernel).value

    def test_succeed_sets_value(self, kernel):
        event = Event(kernel)
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_double_succeed_raises(self, kernel):
        event = Event(kernel)
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_callback_after_trigger_still_delivered(self, kernel):
        event = Event(kernel)
        event.succeed("x")
        got = []
        event.add_callback(got.append)
        kernel.run()
        assert got == ["x"]

    def test_multiple_waiters_all_woken(self, kernel):
        event = Event(kernel)
        got = []
        event.add_callback(lambda v: got.append(("a", v)))
        event.add_callback(lambda v: got.append(("b", v)))
        kernel.call_at(1.0, lambda: event.succeed(7))
        kernel.run()
        assert got == [("a", 7), ("b", 7)]


class TestProcess:
    def test_process_advances_through_timeouts(self, kernel):
        trace = []

        def proc():
            trace.append(kernel.clock.now())
            yield Timeout(2.0)
            trace.append(kernel.clock.now())
            yield Timeout(3.0)
            trace.append(kernel.clock.now())

        Process(kernel, proc())
        kernel.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_process_return_value(self, kernel):
        def proc():
            yield Timeout(1.0)
            return "done"

        p = Process(kernel, proc())
        kernel.run()
        assert p.finished
        assert p.result == "done"

    def test_process_waits_on_event(self, kernel):
        event = Event(kernel)
        got = []

        def proc():
            value = yield event
            got.append((kernel.clock.now(), value))

        Process(kernel, proc())
        kernel.call_at(4.0, lambda: event.succeed("payload"))
        kernel.run()
        assert got == [(4.0, "payload")]

    def test_process_joins_another_process(self, kernel):
        def worker():
            yield Timeout(5.0)
            return 99

        def waiter(w):
            result = yield w
            return result * 2

        w = Process(kernel, worker())
        j = Process(kernel, waiter(w))
        kernel.run()
        assert j.result == 198
        assert kernel.clock.now() == 5.0

    def test_yielding_garbage_raises(self, kernel):
        def proc():
            yield "not a wait"

        Process(kernel, proc())
        with pytest.raises(TypeError):
            kernel.run()

    def test_many_processes_interleave_deterministically(self, kernel):
        trace = []

        def proc(name, delay):
            for _ in range(3):
                yield Timeout(delay)
                trace.append((kernel.clock.now(), name))

        Process(kernel, proc("a", 1.0))
        Process(kernel, proc("b", 1.5))
        kernel.run()
        assert trace == [
            (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"),
            (4.5, "b"),
        ]
