"""Tests for the wall-clock ThreadScheduler (live mode)."""

import threading
import time

import pytest

from repro.sim.scheduler import ThreadScheduler


class TestThreadScheduler:
    def test_callback_fires(self):
        sched = ThreadScheduler()
        fired = threading.Event()
        sched.call_after(0.01, fired.set)
        assert fired.wait(timeout=2.0)
        sched.shutdown()

    def test_rejects_negative_delay(self):
        sched = ThreadScheduler()
        with pytest.raises(ValueError):
            sched.call_after(-1.0, lambda: None)
        sched.shutdown()

    def test_cancel_prevents_firing(self):
        sched = ThreadScheduler()
        fired = threading.Event()
        handle = sched.call_after(0.2, fired.set)
        handle.cancel()
        time.sleep(0.35)
        assert not fired.is_set()
        sched.shutdown()

    def test_shutdown_cancels_pending(self):
        sched = ThreadScheduler()
        fired = threading.Event()
        sched.call_after(0.3, fired.set)
        sched.shutdown()
        time.sleep(0.45)
        assert not fired.is_set()

    def test_schedule_after_shutdown_raises(self):
        sched = ThreadScheduler()
        sched.shutdown()
        with pytest.raises(RuntimeError):
            sched.call_after(0.01, lambda: None)

    def test_clock_advances(self):
        sched = ThreadScheduler()
        a = sched.clock.now()
        time.sleep(0.02)
        assert sched.clock.now() > a
        sched.shutdown()
