"""Tests for the discrete-event kernel: ordering, cancellation, clocks."""

import pytest

from repro.sim.clock import SimClock, WallClock
from repro.sim.kernel import Kernel


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_custom_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(3.5)
        assert clock.now() == 3.5

    def test_advance_rejects_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(9.0)

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(2.0)
        clock.advance(2.0)
        assert clock.now() == 2.0


class TestWallClock:
    def test_starts_near_zero(self):
        assert WallClock().now() < 0.5

    def test_is_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestKernelScheduling:
    def test_call_at_fires_at_scheduled_time(self, kernel):
        fired = []
        kernel.call_at(5.0, lambda: fired.append(kernel.clock.now()))
        kernel.run()
        assert fired == [5.0]

    def test_call_after_is_relative(self, kernel):
        kernel.call_at(3.0, lambda: kernel.call_after(2.0, lambda: None))
        kernel.run()
        assert kernel.clock.now() == 5.0

    def test_rejects_scheduling_in_past(self, kernel):
        kernel.call_at(5.0, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.call_at(1.0, lambda: None)

    def test_rejects_negative_delay(self, kernel):
        with pytest.raises(ValueError):
            kernel.call_after(-1.0, lambda: None)

    def test_same_time_events_fire_in_fifo_order(self, kernel):
        order = []
        for i in range(10):
            kernel.call_at(1.0, lambda i=i: order.append(i))
        kernel.run()
        assert order == list(range(10))

    def test_events_fire_in_time_order(self, kernel):
        order = []
        kernel.call_at(3.0, lambda: order.append(3))
        kernel.call_at(1.0, lambda: order.append(1))
        kernel.call_at(2.0, lambda: order.append(2))
        kernel.run()
        assert order == [1, 2, 3]

    def test_cancel_prevents_firing(self, kernel):
        fired = []
        call = kernel.call_at(1.0, lambda: fired.append(1))
        call.cancel()
        kernel.run()
        assert fired == []

    def test_cancelled_event_does_not_advance_clock(self, kernel):
        call = kernel.call_at(100.0, lambda: None)
        call.cancel()
        kernel.run()
        assert kernel.clock.now() == 0.0


class TestKernelExecution:
    def test_run_until_stops_at_deadline(self, kernel):
        fired = []
        kernel.call_at(1.0, lambda: fired.append(1))
        kernel.call_at(10.0, lambda: fired.append(10))
        kernel.run_until(5.0)
        assert fired == [1]
        assert kernel.clock.now() == 5.0

    def test_run_until_includes_boundary_events(self, kernel):
        fired = []
        kernel.call_at(5.0, lambda: fired.append(5))
        kernel.run_until(5.0)
        assert fired == [5]

    def test_run_until_later_resumes_pending(self, kernel):
        fired = []
        kernel.call_at(10.0, lambda: fired.append(10))
        kernel.run_until(5.0)
        kernel.run_until(15.0)
        assert fired == [10]

    def test_step_returns_false_when_empty(self, kernel):
        assert kernel.step() is False

    def test_events_fired_counter(self, kernel):
        for t in (1.0, 2.0, 3.0):
            kernel.call_at(t, lambda: None)
        kernel.run()
        assert kernel.events_fired == 3

    def test_max_events_bounds_run(self, kernel):
        for t in range(1, 6):
            kernel.call_at(float(t), lambda: None)
        kernel.run(max_events=2)
        assert kernel.events_fired == 2

    def test_peek_skips_cancelled(self, kernel):
        first = kernel.call_at(1.0, lambda: None)
        kernel.call_at(2.0, lambda: None)
        first.cancel()
        assert kernel.peek() == 2.0

    def test_handler_can_schedule_more_work(self, kernel):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                kernel.call_after(1.0, lambda: chain(n + 1))

        kernel.call_at(0.0, lambda: chain(1))
        kernel.run()
        assert fired == [1, 2, 3, 4, 5]
        assert kernel.clock.now() == 4.0
