"""Tests for FIFO resources and time-weighted gauges."""

import pytest

from repro.sim.process import Process, Timeout
from repro.sim.resources import Gauge, Resource


class TestResource:
    def test_rejects_zero_capacity(self, kernel):
        with pytest.raises(ValueError):
            Resource(kernel, capacity=0)

    def test_acquire_within_capacity_is_immediate(self, kernel):
        res = Resource(kernel, capacity=2)
        assert res.acquire().triggered
        assert res.acquire().triggered
        assert res.in_use == 2

    def test_acquire_beyond_capacity_queues(self, kernel):
        res = Resource(kernel, capacity=1)
        res.acquire()
        waiting = res.acquire()
        assert not waiting.triggered
        assert res.queue_length == 1

    def test_release_hands_unit_to_waiter(self, kernel):
        res = Resource(kernel, capacity=1)
        res.acquire()
        waiting = res.acquire()
        res.release()
        assert waiting.triggered
        assert res.in_use == 1
        assert res.queue_length == 0

    def test_release_without_acquire_raises(self, kernel):
        with pytest.raises(RuntimeError):
            Resource(kernel).release()

    def test_try_acquire(self, kernel):
        res = Resource(kernel, capacity=1)
        assert res.try_acquire() is True
        assert res.try_acquire() is False
        res.release()
        assert res.try_acquire() is True

    def test_utilization(self, kernel):
        res = Resource(kernel, capacity=4)
        res.acquire()
        res.acquire()
        assert res.utilization() == 0.5

    def test_fifo_service_order_under_contention(self, kernel):
        res = Resource(kernel, capacity=1)
        order = []

        def worker(name, hold):
            grant = res.acquire()
            if not grant.triggered:
                yield grant
            order.append(("start", name, kernel.clock.now()))
            yield Timeout(hold)
            res.release()

        Process(kernel, worker("a", 2.0))
        Process(kernel, worker("b", 1.0))
        Process(kernel, worker("c", 1.0))
        kernel.run()
        assert [name for _, name, _ in order] == ["a", "b", "c"]


class TestGauge:
    def test_initial_value(self, kernel):
        assert Gauge(kernel, initial=3.0).value == 3.0

    def test_window_average_constant(self, kernel):
        gauge = Gauge(kernel, initial=5.0)
        kernel.call_at(10.0, lambda: None)
        kernel.run()
        assert gauge.window_average() == pytest.approx(5.0)

    def test_window_average_weighted_by_time(self, kernel):
        gauge = Gauge(kernel, initial=0.0)
        kernel.call_at(5.0, lambda: gauge.set(10.0))
        kernel.call_at(10.0, lambda: None)
        kernel.run()
        # 5 s at 0 plus 5 s at 10 -> mean 5
        assert gauge.window_average() == pytest.approx(5.0)

    def test_window_reset(self, kernel):
        gauge = Gauge(kernel, initial=2.0)
        kernel.call_at(4.0, lambda: None)
        kernel.run()
        gauge.window_average(reset=True)
        gauge.set(8.0)
        kernel.call_at(8.0, lambda: None)
        kernel.run()
        assert gauge.window_average() == pytest.approx(8.0)

    def test_add_is_relative(self, kernel):
        gauge = Gauge(kernel, initial=1.0)
        gauge.add(2.5)
        assert gauge.value == 3.5

    def test_zero_span_returns_current_value(self, kernel):
        gauge = Gauge(kernel, initial=7.0)
        assert gauge.window_average() == 7.0
