"""Validated ``ERMI_*`` environment parsing (satellite bugfix).

A malformed tuning knob must fail at construction with a ValueError
naming the variable — not as an anonymous ``invalid literal`` surfacing
from deep inside a stub constructor, and never silently mid-call.
"""

from __future__ import annotations

import pytest

from repro.kvstore.cache import store_lease_ms_from_env
from repro.kvstore.watch import watch_queue_from_env
from repro.rmi.aio import aio_inflight_from_env, blocking_workers_from_env
from repro.rmi.batching import (
    batch_inflight_from_env,
    batch_linger_from_env,
    batch_max_from_env,
)
from repro.rmi.cpu import cpu_shm_min_from_env, cpu_workers_from_env
from repro.rmi.envcfg import env_bytes, env_float, env_int

KNOBS = [
    ("ERMI_BATCH_MAX", batch_max_from_env),
    ("ERMI_BATCH_LINGER_MS", batch_linger_from_env),
    ("ERMI_BATCH_INFLIGHT", batch_inflight_from_env),
    ("ERMI_AIO_INFLIGHT", aio_inflight_from_env),
    ("ERMI_STORE_LEASE_MS", store_lease_ms_from_env),
    ("ERMI_WATCH_QUEUE", watch_queue_from_env),
    ("ERMI_CPU_WORKERS", cpu_workers_from_env),
    ("ERMI_CPU_SHM_MIN", cpu_shm_min_from_env),
    ("ERMI_BLOCKING_WORKERS", blocking_workers_from_env),
]


class TestEnvHelpers:
    def test_int_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("ERMI_TEST_KNOB", raising=False)
        assert env_int("ERMI_TEST_KNOB", 7) == 7

    def test_int_default_when_empty(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "")
        assert env_int("ERMI_TEST_KNOB", 7) == 7

    def test_int_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "42")
        assert env_int("ERMI_TEST_KNOB", 1) == 42
        monkeypatch.setenv("ERMI_TEST_KNOB", "-5")
        assert env_int("ERMI_TEST_KNOB", 1, minimum=1) == 1

    def test_int_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "64k")
        with pytest.raises(ValueError, match="ERMI_TEST_KNOB"):
            env_int("ERMI_TEST_KNOB", 1)

    def test_float_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "2.5")
        assert env_float("ERMI_TEST_KNOB", 0.0) == 2.5
        monkeypatch.setenv("ERMI_TEST_KNOB", "-1.0")
        assert env_float("ERMI_TEST_KNOB", 0.0, minimum=0.0) == 0.0

    def test_float_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "fast")
        with pytest.raises(ValueError, match="ERMI_TEST_KNOB"):
            env_float("ERMI_TEST_KNOB", 0.0)

    def test_float_rejects_nan(self, monkeypatch):
        # float("nan") parses, but a NaN linger/window poisons every
        # comparison downstream — reject it like any other bad value.
        monkeypatch.setenv("ERMI_TEST_KNOB", "nan")
        with pytest.raises(ValueError, match="ERMI_TEST_KNOB"):
            env_float("ERMI_TEST_KNOB", 0.0)

    def test_bytes_plain_integer(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "262144")
        assert env_bytes("ERMI_TEST_KNOB", 0) == 262144

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("256k", 256 * 1024),
            ("256kb", 256 * 1024),
            ("256kib", 256 * 1024),
            ("1m", 1024**2),
            ("1MiB", 1024**2),
            ("2g", 2 * 1024**3),
            (" 4 mib ", 4 * 1024**2),
        ],
    )
    def test_bytes_suffixes_mean_powers_of_1024(
        self, monkeypatch, raw, expected
    ):
        monkeypatch.setenv("ERMI_TEST_KNOB", raw)
        assert env_bytes("ERMI_TEST_KNOB", 0) == expected

    def test_bytes_default_and_minimum(self, monkeypatch):
        monkeypatch.delenv("ERMI_TEST_KNOB", raising=False)
        assert env_bytes("ERMI_TEST_KNOB", 99) == 99
        monkeypatch.setenv("ERMI_TEST_KNOB", "-1")
        assert env_bytes("ERMI_TEST_KNOB", 0, minimum=0) == 0

    def test_bytes_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("ERMI_TEST_KNOB", "fast")
        with pytest.raises(ValueError, match="ERMI_TEST_KNOB"):
            env_bytes("ERMI_TEST_KNOB", 0)


class TestKnobReaders:
    @pytest.mark.parametrize("name,reader", KNOBS)
    def test_malformed_value_raises_naming_the_variable(
        self, monkeypatch, name, reader
    ):
        monkeypatch.setenv(name, "not-a-number")
        with pytest.raises(ValueError, match=name):
            reader()

    @pytest.mark.parametrize("name,reader", KNOBS)
    def test_unset_returns_default_silently(self, monkeypatch, name, reader):
        monkeypatch.delenv(name, raising=False)
        assert reader() >= 0

    def test_batch_max_parses(self, monkeypatch):
        monkeypatch.setenv("ERMI_BATCH_MAX", "64")
        assert batch_max_from_env() == 64

    def test_batch_linger_is_seconds_from_ms(self, monkeypatch):
        monkeypatch.setenv("ERMI_BATCH_LINGER_MS", "2")
        assert batch_linger_from_env() == pytest.approx(0.002)

    def test_store_lease_parses_ms(self, monkeypatch):
        monkeypatch.setenv("ERMI_STORE_LEASE_MS", "125.5")
        assert store_lease_ms_from_env() == pytest.approx(125.5)

    def test_store_lease_rejects_nan(self, monkeypatch):
        monkeypatch.setenv("ERMI_STORE_LEASE_MS", "nan")
        with pytest.raises(ValueError, match="ERMI_STORE_LEASE_MS"):
            store_lease_ms_from_env()

    def test_watch_queue_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv("ERMI_WATCH_QUEUE", "16")
        assert watch_queue_from_env() == 16
        # A zero-depth queue could never deliver anything: clamp to 1.
        monkeypatch.setenv("ERMI_WATCH_QUEUE", "0")
        assert watch_queue_from_env() == 1

    def test_malformed_watch_queue_fails_at_subscription(self, monkeypatch):
        """Same contract as the stub knobs: a typo'd queue depth fails
        when the first watch is registered, naming the variable."""
        from repro.kvstore import HyperStore

        monkeypatch.setenv("ERMI_WATCH_QUEUE", "4k")
        store = HyperStore()
        with pytest.raises(ValueError, match="ERMI_WATCH_QUEUE"):
            store.watch("k", lambda event: None)

    def test_cpu_workers_parses(self, monkeypatch):
        monkeypatch.setenv("ERMI_CPU_WORKERS", "3")
        assert cpu_workers_from_env() == 3

    def test_cpu_shm_min_accepts_suffixes(self, monkeypatch):
        monkeypatch.setenv("ERMI_CPU_SHM_MIN", "256k")
        assert cpu_shm_min_from_env() == 256 * 1024
        # 0 disables the shm path entirely (everything goes inline).
        monkeypatch.setenv("ERMI_CPU_SHM_MIN", "0")
        assert cpu_shm_min_from_env() == 0

    def test_blocking_workers_sizes_the_offload_pool(self, monkeypatch):
        from repro.rmi.aio import _LoopRuntime

        monkeypatch.setenv("ERMI_BLOCKING_WORKERS", "2")
        assert blocking_workers_from_env() == 2
        runtime = _LoopRuntime(blocking_workers_from_env())
        try:
            assert runtime.offload._max_workers == 2
        finally:
            runtime.loop.call_soon_threadsafe(runtime.loop.stop)
            runtime.thread.join(timeout=5)
            runtime.offload.shutdown(wait=False)
            runtime.loop.close()

    def test_malformed_knob_fails_at_stub_construction(self, monkeypatch):
        """The contract the fix exists for: a stub built under a typo'd
        environment fails immediately, pointing at the variable."""
        from repro.core.balancer import ElasticStub
        from repro.rmi.transport import DirectTransport

        monkeypatch.setenv("ERMI_BATCH_MAX", "64k")
        with pytest.raises(ValueError, match="ERMI_BATCH_MAX"):
            ElasticStub(DirectTransport(), lambda: None)
