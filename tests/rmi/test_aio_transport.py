"""Tests for the asyncio-native transport (``repro.rmi.aio``).

Covers the dispatch surface (sync, coroutine, and ``@blocking``
handlers), the failure modes (dead endpoints, missing objects,
deadline, fault hooks), the loop-safety contract (wait guards on loop
threads), the in-flight window, batcher coalescing on the loop drain
discipline, and the end-to-end runtime integration
(``ElasticRuntime.local(transport="asyncio")``).
"""

import asyncio
import threading
import time

import pytest

from repro.errors import ApplicationError, ConnectError, RemoteError
from repro.rmi.aio import (
    DEFAULT_INFLIGHT_WINDOW,
    AsyncioTransport,
    aio_inflight_from_env,
    blocking,
    loop_runtime,
)
from repro.rmi.batching import RequestBatcher
from repro.rmi.future import gather
from repro.rmi.remote import Remote, Skeleton, Stub
from repro.rmi.transport import Request, Response


class Service(Remote):
    """One remote class, three dispatch styles."""

    def __init__(self):
        self.offload_threads = set()

    def double(self, n):
        return 2 * n

    async def adouble(self, n):
        return 2 * n

    @blocking
    def nap(self, seconds):
        self.offload_threads.add(threading.current_thread().name)
        time.sleep(seconds)
        return "rested"

    def explode(self):
        raise ValueError("kaboom")


def exported(transport, impl=None):
    endpoint = transport.add_endpoint("server")
    skeleton = Skeleton(impl or Service(), transport, endpoint.endpoint_id)
    return endpoint, skeleton


@pytest.fixture
def transport():
    t = AsyncioTransport()
    yield t
    t.shutdown()


class TestEnvConfig:
    def test_default_window(self, monkeypatch):
        monkeypatch.delenv("ERMI_AIO_INFLIGHT", raising=False)
        assert aio_inflight_from_env() == DEFAULT_INFLIGHT_WINDOW

    def test_env_override_and_floor(self, monkeypatch):
        monkeypatch.setenv("ERMI_AIO_INFLIGHT", "128")
        assert aio_inflight_from_env() == 128
        monkeypatch.setenv("ERMI_AIO_INFLIGHT", "0")
        assert aio_inflight_from_env() == 1

    def test_blocking_marker(self):
        assert getattr(Service.nap, "__ermi_blocking__", False)
        assert not getattr(Service.double, "__ermi_blocking__", False)


class TestDispatch:
    def test_sync_method_roundtrip(self, transport):
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        assert stub.double(21) == 42

    def test_coroutine_method_awaited_on_loop(self, transport):
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        assert stub.adouble(21) == 42

    def test_blocking_method_offloaded(self, transport):
        impl = Service()
        _, skeleton = exported(transport, impl)
        stub = Stub(transport, skeleton.ref())
        assert stub.nap(0.01) == "rested"
        # The marked method ran on the offload pool, not the loop thread.
        assert impl.offload_threads
        assert all(
            name.startswith("ermi-aio-offload")
            for name in impl.offload_threads
        )

    def test_application_error_propagates(self, transport):
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        with pytest.raises(ApplicationError, match="kaboom"):
            stub.explode()

    def test_blocking_calls_overlap_on_one_loop(self, transport):
        """Two 150 ms sleeps through one event loop finish in well under
        300 ms: the offload executor gives real concurrency."""
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        started = time.monotonic()
        futures = [stub.invoke_async("nap", 0.15) for _ in range(2)]
        assert gather(futures) == ["rested", "rested"]
        assert time.monotonic() - started < 0.29


class TestFailureModes:
    def test_killed_endpoint_raises_connect_error(self, transport):
        endpoint, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        transport.kill(endpoint.endpoint_id)
        with pytest.raises(ConnectError):
            stub.double(1)

    def test_missing_object_raises_connect_error(self, transport):
        endpoint = transport.add_endpoint("empty")
        with pytest.raises(ConnectError):
            transport.invoke(
                endpoint.endpoint_id, Request("nope", "m", b"")
            )

    def test_dispatch_deadline_raises_remote_error(self):
        transport = AsyncioTransport(timeout=0.05)
        try:
            endpoint = transport.add_endpoint("slow")

            async def stall(request):
                await asyncio.sleep(10.0)
                return Response(kind="result", payload=request.payload)

            endpoint.export("o", lambda request: stall(request))
            with pytest.raises(RemoteError, match="timed out"):
                transport.invoke(endpoint.endpoint_id, Request("o", "m", b""))
        finally:
            transport.shutdown()

    def test_fault_hook_consulted_per_message(self, transport):
        endpoint, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        seen = []

        def hook(endpoint_id, request):
            seen.append(request.method)
            if request.method == "explode_link":
                raise ConnectError("injected")

        transport.install_fault_hook(hook)
        assert stub.double(3) == 6
        assert seen == ["double"]
        object_id = skeleton.ref().object_id
        with pytest.raises(ConnectError, match="injected"):
            transport.invoke(
                endpoint.endpoint_id,
                Request(object_id, "explode_link", b""),
            )

    def test_closed_transport_refuses_new_calls(self):
        transport = AsyncioTransport()
        endpoint, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        assert stub.double(1) == 2
        transport.shutdown()
        with pytest.raises(ConnectError, match="shut down"):
            stub.double(1)


class TestLoopSafety:
    def test_wait_guard_raises_on_loop_thread(self, transport):
        failure = []
        done = threading.Event()

        def on_loop():
            try:
                transport.wait_guard()
            except RemoteError as exc:
                failure.append(exc)
            done.set()

        transport.schedule(on_loop)
        assert done.wait(timeout=5.0)
        assert failure and "deadlock" in str(failure[0])

    def test_wait_guard_passes_off_loop(self, transport):
        transport.wait_guard()  # must not raise

    def test_sync_bridge_from_loop_thread_fails_fast(self, transport):
        endpoint, skeleton = exported(transport)
        outcome = []
        done = threading.Event()

        def on_loop():
            try:
                transport.invoke(
                    endpoint.endpoint_id, Request("x", "double", b"")
                )
            except RemoteError as exc:
                outcome.append(exc)
            done.set()

        transport.schedule(on_loop)
        assert done.wait(timeout=5.0)
        assert outcome, "invoke() on the loop thread must raise, not hang"

    def test_shared_loop_runtime_is_a_singleton(self):
        assert loop_runtime() is loop_runtime()
        assert loop_runtime().thread.daemon


class TestInflightWindow:
    def test_window_bounds_concurrent_dispatches(self):
        transport = AsyncioTransport(timeout=None, inflight_limit=4)
        try:
            endpoint = transport.add_endpoint("parked")
            gate = asyncio.Event()

            async def park(request):
                await gate.wait()
                return Response(kind="result", payload=request.payload)

            endpoint.export("o", lambda request: park(request))
            done = []
            lock = threading.Lock()

            def on_done(result, error):
                with lock:
                    done.append((result, error))

            for seq in range(10):
                transport.submit(
                    endpoint.endpoint_id, Request("o", "m", b""), on_done
                )
            deadline = time.monotonic() + 5.0
            while transport.inflight < 4 and time.monotonic() < deadline:
                time.sleep(0.005)
            # The semaphore admits exactly the window, never more.
            assert transport.inflight == 4
            assert transport.inflight_hwm == 4
            transport.schedule(gate.set)
            while len(done) < 10 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert len(done) == 10
            assert all(error is None for _, error in done)
            assert transport.inflight == 0
        finally:
            transport.shutdown()


class TestObservability:
    def test_inflight_gauges_and_lag_histogram(self, transport):
        from repro.obs import Observability

        obs = Observability()
        transport.set_obs(obs)
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        futures = [stub.invoke_async("adouble", i) for i in range(100)]
        gather(futures)
        assert obs.registry.gauge("rmi.aio.inflight_hwm").value >= 1
        assert obs.registry.gauge("rmi.aio.inflight").value == 0
        # The lag sampler fires every 50 ms while obs is attached.
        deadline = time.monotonic() + 5.0
        lag = obs.registry.histogram("rmi.aio.loop_lag_ms")
        while lag.count == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert lag.count >= 1


class TestBatcherOnLoop:
    def test_loop_drain_coalesces(self, transport):
        _, skeleton = exported(transport)
        batcher = RequestBatcher(transport, max_batch=8, linger=0.0)
        stub = Stub(transport, skeleton.ref(), batcher=batcher)
        futures = [stub.invoke_async("double", i) for i in range(8)]
        assert gather(futures) == [2 * i for i in range(8)]
        assert batcher.stats.batches >= 1
        assert batcher.stats.entries == 8

    def test_sync_call_through_batcher(self, transport):
        _, skeleton = exported(transport)
        batcher = RequestBatcher(transport, max_batch=4, linger=0.0)
        stub = Stub(transport, skeleton.ref(), batcher=batcher)
        assert stub.double(5) == 10


class TestFanout:
    def test_thousand_inflight_calls(self, transport):
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        futures = [stub.invoke_async("adouble", i) for i in range(1000)]
        assert gather(futures) == [2 * i for i in range(1000)]

    def test_mixed_sync_and_async_handlers(self, transport):
        _, skeleton = exported(transport)
        stub = Stub(transport, skeleton.ref())
        futures = [
            stub.invoke_async("double" if i % 2 else "adouble", i)
            for i in range(64)
        ]
        assert gather(futures) == [2 * i for i in range(64)]
