"""Tests for skeletons and unicast stubs: dispatch, stats, drain,
redirects, and failure semantics."""

import pytest

from repro.errors import (
    ApplicationError,
    ConnectError,
    MemberDrainedError,
)
from repro.rmi.remote import Remote, Skeleton, Stub
from repro.rmi.transport import DirectTransport, Request, Response


class Calculator(Remote):
    def __init__(self):
        self.memory = 0.0

    def add(self, a, b):
        return a + b

    def store(self, value):
        self.memory = value

    def recall(self):
        return self.memory

    def explode(self):
        raise ValueError("kaboom")


@pytest.fixture
def transport():
    return DirectTransport()


@pytest.fixture
def exported(transport):
    endpoint = transport.add_endpoint("server")
    skeleton = Skeleton(Calculator(), transport, endpoint.endpoint_id)
    stub = Stub(transport, skeleton.ref())
    return skeleton, stub


class TestInvocation:
    def test_basic_call(self, exported):
        _, stub = exported
        assert stub.add(2, 3) == 5

    def test_kwargs(self, exported):
        _, stub = exported
        assert stub.add(a=2, b=3) == 5

    def test_state_persists_across_calls(self, exported):
        _, stub = exported
        stub.store(1.5)
        assert stub.recall() == 1.5

    def test_application_exception_propagates_with_cause(self, exported):
        _, stub = exported
        with pytest.raises(ApplicationError) as info:
            stub.explode()
        assert isinstance(info.value.cause, ValueError)
        assert "kaboom" in str(info.value.cause)

    def test_unknown_method_is_remote_error(self, exported):
        _, stub = exported
        with pytest.raises(ApplicationError):
            stub.no_such_method()

    def test_arguments_pass_by_value(self, transport):
        class Holder(Remote):
            def __init__(self):
                self.seen = None

            def take(self, lst):
                self.seen = lst
                lst.append("server-side-mutation")
                return len(lst)

        impl = Holder()
        endpoint = transport.add_endpoint("s")
        skeleton = Skeleton(impl, transport, endpoint.endpoint_id)
        stub = Stub(transport, skeleton.ref())
        mine = [1, 2]
        assert stub.take(mine) == 3
        assert mine == [1, 2]           # client copy untouched
        assert impl.seen is not mine    # server got its own copy

    def test_private_attribute_access_not_proxied(self, exported):
        _, stub = exported
        with pytest.raises(AttributeError):
            stub._secret


class TestCallStats:
    def test_calls_recorded_per_method(self, exported):
        skeleton, stub = exported
        stub.add(1, 1)
        stub.add(2, 2)
        stub.recall()
        snap = skeleton.stats.snapshot()
        assert snap["add"].calls == 2
        assert snap["recall"].calls == 1

    def test_errors_counted(self, exported):
        skeleton, stub = exported
        with pytest.raises(ApplicationError):
            stub.explode()
        assert skeleton.stats.snapshot()["explode"].errors == 1

    def test_snapshot_and_reset_starts_fresh_window(self, exported):
        skeleton, stub = exported
        stub.add(1, 1)
        window = skeleton.stats.snapshot_and_reset()
        assert window["add"].calls == 1
        stub.add(1, 1)
        assert skeleton.stats.snapshot()["add"].calls == 1

    def test_latency_mean(self, exported):
        skeleton, stub = exported
        stub.add(1, 1)
        stats = skeleton.stats.snapshot()["add"]
        assert stats.latency() >= 0.0


class TestDrain:
    def test_draining_skeleton_rejects_new_calls(self, exported):
        skeleton, stub = exported
        skeleton.start_drain()
        with pytest.raises(MemberDrainedError):
            stub.add(1, 1)

    def test_drained_flag_with_no_pending(self, exported):
        skeleton, _ = exported
        skeleton.start_drain()
        assert skeleton.is_drained

    def test_unexport_removes_handler(self, transport, exported):
        skeleton, stub = exported
        skeleton.unexport()
        with pytest.raises(ConnectError):
            stub.add(1, 1)


class TestRedirects:
    def test_redirect_policy_bounces_to_target(self, transport):
        ep_a = transport.add_endpoint("a")
        ep_b = transport.add_endpoint("b")
        skel_a = Skeleton(Calculator(), transport, ep_a.endpoint_id)
        skel_b = Skeleton(Calculator(), transport, ep_b.endpoint_id)
        skel_a.redirect_policy = lambda req: skel_b.ref()
        stub = Stub(transport, skel_a.ref())
        assert stub.add(4, 4) == 8
        assert skel_b.stats.snapshot()["add"].calls == 1
        assert skel_a.stats.snapshot() == {}

    def test_redirect_loop_detected(self, transport):
        ep_a = transport.add_endpoint("a")
        ep_b = transport.add_endpoint("b")
        skel_a = Skeleton(Calculator(), transport, ep_a.endpoint_id)
        skel_b = Skeleton(Calculator(), transport, ep_b.endpoint_id)
        skel_a.redirect_policy = lambda req: skel_b.ref()
        skel_b.redirect_policy = lambda req: skel_a.ref()
        stub = Stub(transport, skel_a.ref())
        with pytest.raises(ApplicationError):
            stub.add(1, 1)

    def test_self_redirect_executes_locally(self, transport):
        ep = transport.add_endpoint("a")
        skel = Skeleton(Calculator(), transport, ep.endpoint_id)
        skel.redirect_policy = lambda req: skel.ref()
        stub = Stub(transport, skel.ref())
        assert stub.add(1, 2) == 3


class TestEndpointFailure:
    def test_dead_endpoint_raises_connect_error(self, transport, exported):
        skeleton, stub = exported
        transport.kill(skeleton.endpoint_id)
        with pytest.raises(ConnectError):
            stub.add(1, 1)

    def test_unknown_endpoint_raises(self, transport):
        from repro.rmi.remote import RemoteRef

        stub = Stub(transport, RemoteRef("ep-999", "obj-1"))
        with pytest.raises(ConnectError):
            stub.add(1, 1)
