"""Thread-safety of call statistics and stub bookkeeping."""

import threading

from repro.rmi.remote import CallStats, MethodStats


class TestCallStatsConcurrency:
    def test_concurrent_records_are_all_counted(self):
        stats = CallStats()

        def hammer(method):
            for _ in range(500):
                stats.record(method, 0.001)

        threads = [
            threading.Thread(target=hammer, args=(f"m{i % 3}",))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = stats.snapshot()
        assert sum(s.calls for s in snapshot.values()) == 3000
        assert set(snapshot) == {"m0", "m1", "m2"}

    def test_snapshot_and_reset_never_loses_or_doubles_records(self):
        """Every record lands in exactly one window, even while windows
        roll concurrently with the writers."""
        stats = CallStats()
        per_thread = 2000

        def writer():
            for _ in range(per_thread):
                stats.record("op", 0.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        collected = 0
        while any(t.is_alive() for t in threads):
            window = stats.snapshot_and_reset()
            collected += sum(s.calls for s in window.values())
        for t in threads:
            t.join()
        final = stats.snapshot_and_reset()
        collected += sum(s.calls for s in final.values())
        assert collected == 4 * per_thread

    def test_error_and_latency_accumulation(self):
        stats = CallStats()
        stats.record("op", 0.1)
        stats.record("op", 0.3, error=True)
        window = stats.snapshot()["op"]
        assert window.calls == 2
        assert window.errors == 1
        assert window.latency() == 0.2


class TestMethodStats:
    def test_latency_of_idle_method_is_zero(self):
        assert MethodStats().latency() == 0.0

    def test_mean_latency(self):
        stats = MethodStats(calls=4, total_latency=1.0)
        assert stats.latency() == 0.25
