"""Tests for direct and threaded transports."""

import threading
import time

import pytest

from repro.errors import ConnectError
from repro.rmi.marshal import marshal_value
from repro.rmi.remote import Remote, Skeleton, Stub
from repro.rmi.transport import (
    DirectTransport,
    Request,
    Response,
    ThreadedTransport,
)


def echo_handler(request: Request) -> Response:
    return Response(kind="result", payload=request.payload)


class TestDirectTransport:
    def test_invoke_reaches_handler(self):
        transport = DirectTransport()
        ep = transport.add_endpoint("s")
        ep.export("o", echo_handler)
        payload = marshal_value(((1,), {}))
        response = transport.invoke(
            ep.endpoint_id, Request("o", "m", payload)
        )
        assert response.kind == "result"
        assert response.payload == payload

    def test_unknown_object_raises(self):
        transport = DirectTransport()
        ep = transport.add_endpoint("s")
        with pytest.raises(ConnectError):
            transport.invoke(ep.endpoint_id, Request("nope", "m", b""))

    def test_killed_endpoint_raises(self):
        transport = DirectTransport()
        ep = transport.add_endpoint("s")
        ep.export("o", echo_handler)
        transport.kill(ep.endpoint_id)
        with pytest.raises(ConnectError):
            transport.invoke(ep.endpoint_id, Request("o", "m", b""))

    def test_revive_restores_service(self):
        transport = DirectTransport()
        ep = transport.add_endpoint("s")
        ep.export("o", echo_handler)
        transport.kill(ep.endpoint_id)
        transport.revive(ep.endpoint_id)
        response = transport.invoke(ep.endpoint_id, Request("o", "m", b"x"))
        assert response.kind == "result"

    def test_message_counter_and_hook(self):
        seen = []
        transport = DirectTransport(on_message=lambda eid, req: seen.append(req))
        ep = transport.add_endpoint("s")
        ep.export("o", echo_handler)
        transport.invoke(ep.endpoint_id, Request("o", "m", b""))
        assert transport.messages_sent == 1
        assert len(seen) == 1

    def test_duplicate_export_raises(self):
        transport = DirectTransport()
        ep = transport.add_endpoint("s")
        ep.export("o", echo_handler)
        with pytest.raises(ValueError):
            ep.export("o", echo_handler)


class SlowService(Remote):
    def nap(self, seconds):
        time.sleep(seconds)
        return "rested"

    def ping(self):
        return "pong"


class TestThreadedTransport:
    def test_end_to_end_call(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("s")
            skel = Skeleton(SlowService(), transport, ep.endpoint_id)
            stub = Stub(transport, skel.ref())
            assert stub.ping() == "pong"
        finally:
            transport.shutdown()

    def test_concurrent_calls_overlap(self):
        """Two 150 ms calls through a 4-worker endpoint should finish in
        well under 300 ms — proof of real concurrency."""
        transport = ThreadedTransport(workers_per_endpoint=4)
        try:
            ep = transport.add_endpoint("s")
            skel = Skeleton(SlowService(), transport, ep.endpoint_id)
            stub = Stub(transport, skel.ref())
            results = []
            started = time.monotonic()
            threads = [
                threading.Thread(target=lambda: results.append(stub.nap(0.15)))
                for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.monotonic() - started
            assert results == ["rested", "rested"]
            assert elapsed < 0.29
        finally:
            transport.shutdown()

    def test_kill_stops_dispatch(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("s")
            skel = Skeleton(SlowService(), transport, ep.endpoint_id)
            stub = Stub(transport, skel.ref())
            transport.kill(ep.endpoint_id)
            with pytest.raises(ConnectError):
                stub.ping()
        finally:
            transport.shutdown()

    def test_pending_tracked_during_call(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("s")
            skel = Skeleton(SlowService(), transport, ep.endpoint_id)
            stub = Stub(transport, skel.ref())
            t = threading.Thread(target=lambda: stub.nap(0.2))
            t.start()
            time.sleep(0.05)
            assert skel.pending == 1
            t.join()
            assert skel.pending == 0
        finally:
            transport.shutdown()

    def test_drain_waits_for_inflight_calls(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("s")
            skel = Skeleton(SlowService(), transport, ep.endpoint_id)
            stub = Stub(transport, skel.ref())
            t = threading.Thread(target=lambda: stub.nap(0.2))
            t.start()
            time.sleep(0.05)
            skel.start_drain()
            assert not skel.is_drained  # call still in flight
            assert skel.wait_drained(timeout=2.0)
            t.join()
        finally:
            transport.shutdown()
