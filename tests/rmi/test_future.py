"""Tests for :class:`repro.rmi.future.RmiFuture` and friends."""

import threading

import pytest

from repro.rmi.future import (
    InvocationTimeout,
    RmiFuture,
    gather,
    run_async,
)


class TestCompletion:
    def test_result_after_set(self):
        future = RmiFuture()
        future.set_result(41)
        assert future.done()
        assert future.result() == 41
        assert future.exception() is None

    def test_exception_after_set(self):
        future = RmiFuture()
        boom = ValueError("boom")
        future.set_exception(boom)
        assert future.done()
        assert future.exception() is boom
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_none_is_a_valid_result(self):
        future = RmiFuture()
        future.set_result(None)
        assert future.result() is None
        assert future.exception() is None

    def test_double_completion_is_an_error(self):
        future = RmiFuture()
        future.set_result(1)
        with pytest.raises(RuntimeError, match="already completed"):
            future.set_result(2)
        with pytest.raises(RuntimeError, match="already completed"):
            future.set_exception(ValueError())

    def test_completed_and_failed_constructors(self):
        assert RmiFuture.completed("x").result() == "x"
        failed = RmiFuture.failed(KeyError("k"))
        assert isinstance(failed.exception(), KeyError)


class TestWaiting:
    def test_wait_returns_false_on_timeout(self):
        future = RmiFuture()
        assert future.wait(timeout=0.01) is False
        assert not future.done()

    def test_result_timeout_raises_invocation_timeout(self):
        future = RmiFuture()
        with pytest.raises(InvocationTimeout):
            future.result(timeout=0.01)
        with pytest.raises(InvocationTimeout):
            future.exception(timeout=0.01)

    def test_cross_thread_completion_wakes_waiter(self):
        future = RmiFuture()
        timer = threading.Timer(0.05, future.set_result, args=(7,))
        timer.start()
        try:
            assert future.result(timeout=5.0) == 7
        finally:
            timer.cancel()

    def test_no_event_allocated_unless_a_waiter_parks(self):
        # The pipelined path creates one future per logical call; the
        # park/wake Event must stay lazy so non-blocking calls never
        # pay for it.
        future = RmiFuture()
        future.set_result(1)
        assert future.result() == 1
        assert future._event is None


class TestWaitHook:
    def test_wait_hook_runs_before_parking(self):
        future = RmiFuture()
        future.bind_wait_hook(lambda: future.set_result("flushed"))
        # The hook (a deferred-batch flush) completes the future, so
        # the wait returns without ever parking on an event.
        assert future.result(timeout=0) == "flushed"
        assert future._event is None

    def test_wait_hook_runs_at_most_once(self):
        calls = []
        future = RmiFuture()
        future.bind_wait_hook(lambda: calls.append(1))
        future.wait(timeout=0)
        future.wait(timeout=0)
        assert calls == [1]

    def test_wait_hook_skipped_when_already_done(self):
        calls = []
        future = RmiFuture()
        future.bind_wait_hook(lambda: calls.append(1))
        future.set_result(1)
        assert future.result() == 1
        assert calls == []


class TestCallbacks:
    def test_callback_runs_on_completion(self):
        seen = []
        future = RmiFuture()
        future.add_done_callback(seen.append)
        assert seen == []
        future.set_result(5)
        assert seen == [future]

    def test_callback_runs_immediately_when_done(self):
        seen = []
        future = RmiFuture.completed(1)
        future.add_done_callback(seen.append)
        assert seen == [future]

    def test_callbacks_run_in_order(self):
        order = []
        future = RmiFuture()
        future.add_done_callback(lambda f: order.append("a"))
        future.add_done_callback(lambda f: order.append("b"))
        future.set_exception(ValueError())
        assert order == ["a", "b"]


class TestGather:
    def test_gather_preserves_order(self):
        futures = [RmiFuture() for _ in range(4)]
        for i, future in enumerate(reversed(futures)):
            future.set_result(i)
        assert gather(futures) == [3, 2, 1, 0]

    def test_gather_raises_first_failure(self):
        ok = RmiFuture.completed(1)
        bad = RmiFuture.failed(RuntimeError("nope"))
        with pytest.raises(RuntimeError, match="nope"):
            gather([ok, bad])


class TestRunAsync:
    def test_run_async_result(self):
        assert run_async(lambda: 6 * 7).result(timeout=5.0) == 42

    def test_run_async_relays_exception(self):
        def boom():
            raise KeyError("missing")

        future = run_async(boom)
        assert isinstance(future.exception(timeout=5.0), KeyError)
