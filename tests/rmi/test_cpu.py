"""Multi-core skeleton execution: process-pool dispatch + zero-copy payloads.

Implementation classes here are module-level on purpose: workers are
*spawned* (fresh interpreters, immune to inherited-lock fork hazards),
so everything that crosses the process boundary must be importable by
reference from the worker side.
"""

from __future__ import annotations

import itertools
import os
from typing import Any

import pytest

from repro.errors import MarshalError
from repro.obs import Observability
from repro.rmi.cpu import (
    DEFAULT_SHM_MIN,
    CpuExecutor,
    _pack_payload,
    _unpack_payload,
    cpu_bound,
    live_segments,
)
from repro.rmi.fastpath import dumps_oob, loads_oob
from repro.rmi.remote import Remote, Skeleton, Stub, _declares_cpu_bound
from repro.rmi.transport import DirectTransport, ThreadedTransport


class _Hasher(Remote):
    """A worker-visible impl: one cpu-bound method, one plain one."""

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt
        self.calls = 0

    @cpu_bound
    def digest(self, blob: bytes) -> int:
        self.calls += 1  # mutates the worker's snapshot only
        return (sum(blob) + self.salt) & 0xFFFFFFFF

    @cpu_bound
    def echo(self, value: Any) -> Any:
        return value

    @cpu_bound
    def pid(self) -> int:
        return os.getpid()

    @cpu_bound
    def fail(self, message: str) -> None:
        raise ValueError(message)

    def plain(self) -> str:
        return "inline"


class _Plain(Remote):
    def ping(self) -> str:
        return "pong"


class TestDecorator:
    def test_marks_the_function(self):
        assert _Hasher.digest.__ermi_cpu_bound__ is True
        assert not getattr(_Hasher.plain, "__ermi_cpu_bound__", False)

    def test_class_scan(self):
        assert _declares_cpu_bound(_Hasher)
        assert not _declares_cpu_bound(_Plain)


class TestOutOfBandPickle:
    def test_small_values_stay_inline(self):
        body, buffers = dumps_oob({"k": b"tiny"}, min_bytes=1024)
        assert buffers == []
        assert loads_oob(body, None) == {"k": b"tiny"}

    def test_large_buffers_promoted_and_restored_by_value(self):
        blob = bytes(range(256)) * 16          # 4 KiB
        mutable = bytearray(blob)
        value = {"a": blob, "b": [mutable], "c": 7}
        body, buffers = dumps_oob(value, min_bytes=1024)
        assert len(buffers) == 2
        views = [buf.raw() for buf in buffers]
        restored = loads_oob(body, views)
        for view in views:
            view.release()                     # must not break the copies
        assert restored["a"] == blob
        assert type(restored["a"]) is bytes
        assert type(restored["b"][0]) is bytearray
        restored["b"][0][0] ^= 0xFF            # independent copy
        assert mutable[0] == blob[0]
        assert restored["c"] == 7

    def test_deep_nesting_beyond_walk_depth_still_roundtrips(self):
        # Depth-limited promotion: the blob rides inline, but the value
        # must survive unchanged.
        value = [[[[b"x" * 4096]]]]
        body, buffers = dumps_oob(value, min_bytes=1024)
        assert loads_oob(body, [b.raw() for b in buffers]) == value


class TestPayloadPacking:
    def test_small_payload_has_no_segment(self):
        spec, segment = _pack_payload(
            ("m", (b"small",), {}),
            DEFAULT_SHM_MIN,
            "ermi-cpu-test",
            itertools.count(),
        )
        assert segment is None
        assert _unpack_payload(spec) == ("m", (b"small",), {})

    def test_large_payload_rides_shared_memory(self):
        blob = os.urandom(512 * 1024)
        spec, segment = _pack_payload(
            ("m", (blob,), {}),
            DEFAULT_SHM_MIN,
            "ermi-cpu-test",
            itertools.count(),
        )
        assert segment is not None
        assert segment in live_segments()
        body, inline, shm_descr = spec
        assert inline is None and shm_descr[0] == segment
        method, args, kwargs = _unpack_payload(spec)
        assert args[0] == blob
        # The consumer unlinks the segment after reconstruction.
        assert segment not in live_segments()

    def test_huge_crossover_forces_pipe_copy(self):
        blob = os.urandom(512 * 1024)
        spec, segment = _pack_payload(
            ("m", (blob,), {}), 1 << 62, "ermi-cpu-test", itertools.count()
        )
        assert segment is None
        assert _unpack_payload(spec)[1][0] == blob


@pytest.fixture(scope="module")
def executor():
    pool = CpuExecutor(workers=1)
    yield pool
    pool.shutdown()


class TestCpuExecutor:
    def test_runs_in_another_process(self, executor):
        assert executor.run_call(_Hasher(), "pid", (), {}) != os.getpid()

    def test_result_roundtrip_small_and_large(self, executor):
        impl = _Hasher(salt=1)
        assert executor.run_call(impl, "digest", (b"\x01\x02",), {}) == 4
        blob = os.urandom(1024 * 1024)
        assert executor.run_call(impl, "echo", (blob,), {}) == blob

    def test_impl_state_is_a_snapshot(self, executor):
        impl = _Hasher()
        executor.run_call(impl, "digest", (b"x",), {})
        assert impl.calls == 0  # worker mutated its copy, not ours

    def test_application_exception_propagates(self, executor):
        with pytest.raises(ValueError, match="boom"):
            executor.run_call(_Hasher(), "fail", ("boom",), {})

    def test_unpicklable_argument_raises_marshal_error(self, executor):
        with pytest.raises(MarshalError):
            executor.run_call(_Hasher(), "echo", (lambda: None,), {})

    def test_no_segments_leak(self, executor):
        blob = os.urandom(1024 * 1024)
        for _ in range(3):
            executor.run_call(_Hasher(), "echo", (blob,), {})
        assert live_segments() == []

    def test_obs_gauges_and_latency(self, executor):
        obs = Observability()
        executor.set_obs(obs)
        try:
            executor.run_call(_Hasher(), "digest", (b"x",), {})
            assert obs.registry.gauge("rmi.cpu.workers").value == 1.0
            assert obs.registry.histogram("rmi.cpu.dispatch_latency").count >= 1
            assert obs.registry.gauge("rmi.cpu.inflight").value == 0.0
        finally:
            executor.set_obs(None)

    def test_shutdown_is_idempotent(self):
        pool = CpuExecutor(workers=1)
        pool.run_call(_Hasher(), "digest", (b"x",), {})
        pool.shutdown()
        pool.shutdown()
        assert pool.worker_pids() == []


class TestTransportIntegration:
    def test_threaded_transport_dispatches_to_worker(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("m0")
            skeleton = Skeleton(_Hasher(), transport, ep.endpoint_id)
            stub = Stub(transport, skeleton.ref())
            assert stub.pid() != os.getpid()
            assert stub.plain() == "inline"  # unmarked methods stay local
            assert skeleton.stats.total_calls() == 2
        finally:
            transport.shutdown()

    def test_direct_transport_stays_inline(self):
        """DirectTransport declines to provide a pool: cpu-bound methods
        run inline and deterministically (simulation contract)."""
        transport = DirectTransport()
        ep = transport.add_endpoint("m0")
        skeleton = Skeleton(_Hasher(), transport, ep.endpoint_id)
        stub = Stub(transport, skeleton.ref())
        assert skeleton._cpu is None
        assert stub.pid() == os.getpid()

    def test_no_pool_created_without_cpu_methods(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("m0")
            skeleton = Skeleton(_Plain(), transport, ep.endpoint_id)
            stub = Stub(transport, skeleton.ref())
            assert stub.ping() == "pong"
            assert skeleton._cpu is None
            assert transport.cpu_executor() is not None  # created on demand
        finally:
            transport.shutdown()

    def test_skeletons_share_the_transport_pool(self):
        transport = ThreadedTransport()
        try:
            a = Skeleton(
                _Hasher(), transport, transport.add_endpoint("a").endpoint_id
            )
            b = Skeleton(
                _Hasher(), transport, transport.add_endpoint("b").endpoint_id
            )
            assert a._cpu is b._cpu
        finally:
            transport.shutdown()


class TestAsyncioTransportIntegration:
    def test_cpu_bound_methods_leave_the_loop(self):
        from repro.rmi.aio import AsyncioTransport

        transport = AsyncioTransport()
        try:
            ep = transport.add_endpoint("m0")
            skeleton = Skeleton(_Hasher(), transport, ep.endpoint_id)
            stub = Stub(transport, skeleton.ref())
            pids = {stub.invoke_async("pid").result(timeout=60) for _ in range(3)}
            assert os.getpid() not in pids
        finally:
            transport.shutdown()
