"""Tests for the client-side request batcher (coalescing layer).

Covers both dispatch disciplines — the deferred single-threaded path on
:class:`DirectTransport` and the combiner path on
:class:`ThreadedTransport` — plus per-entry failure semantics, the
completer contract, zero-copy payload passthrough, and the in-flight
window.
"""

import dataclasses
import threading

import pytest

from repro.errors import ApplicationError, ConnectError
from repro.rmi.batching import (
    BatcherStats,
    RequestBatcher,
    batch_inflight_from_env,
    batch_linger_from_env,
    batch_max_from_env,
)
from repro.rmi.fastpath import is_zero_copy
from repro.rmi.future import gather
from repro.rmi.remote import Remote, Skeleton, Stub
from repro.rmi.transport import (
    BatchRequest,
    DirectTransport,
    Request,
    ThreadedTransport,
)


class Echo(Remote):
    def __init__(self):
        self.calls = 0

    def echo(self, value):
        self.calls += 1
        return value

    def explode(self):
        raise ValueError("kaboom")


def exported(transport):
    endpoint = transport.add_endpoint("server")
    skeleton = Skeleton(Echo(), transport, endpoint.endpoint_id)
    return skeleton


def make_stub(transport, skeleton, **batcher_kwargs):
    batcher = RequestBatcher(transport, **batcher_kwargs)
    return Stub(transport, skeleton.ref(), batcher=batcher), batcher


class TestEnvConfig:
    def test_defaults_disable_batching(self, monkeypatch):
        monkeypatch.delenv("ERMI_BATCH_MAX", raising=False)
        monkeypatch.delenv("ERMI_BATCH_LINGER_MS", raising=False)
        monkeypatch.delenv("ERMI_BATCH_INFLIGHT", raising=False)
        assert batch_max_from_env() == 1
        assert batch_linger_from_env() == 0.0
        assert batch_inflight_from_env() == 2

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("ERMI_BATCH_MAX", "32")
        monkeypatch.setenv("ERMI_BATCH_LINGER_MS", "2.5")
        monkeypatch.setenv("ERMI_BATCH_INFLIGHT", "4")
        assert batch_max_from_env() == 32
        assert batch_linger_from_env() == pytest.approx(0.0025)
        assert batch_inflight_from_env() == 4

    def test_disabled_batcher_is_inert(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=1)
        assert not batcher.enabled
        assert stub.echo(7) == 7
        assert batcher.stats.batches == 0


class TestDeferredDiscipline:
    """DirectTransport: entries queue, the gather's wait hook flushes."""

    def test_pipelined_window_coalesces(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        futures = [stub.invoke_async("echo", i) for i in range(5)]
        # Nothing sent yet: submission never parks or flushes under max.
        assert batcher.pending_count() == 5
        assert skeleton.impl.calls == 0
        assert gather(futures) == [0, 1, 2, 3, 4]
        assert skeleton.impl.calls == 5
        assert batcher.stats.batches == 1
        assert batcher.stats.entries == 5

    def test_queue_reaching_max_batch_flushes(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=3, linger=0.0)
        futures = [stub.invoke_async("echo", i) for i in range(3)]
        # Hitting max_batch dispatched without anyone waiting.
        assert batcher.pending_count() == 0
        assert skeleton.impl.calls == 3
        assert gather(futures) == [0, 1, 2]

    def test_sync_call_pipelines_queued_entries(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        async_future = stub.invoke_async("echo", "queued")
        # A synchronous call through the same stub sweeps the deferred
        # entry into its own batch.
        assert stub.echo("sync") == "sync"
        assert batcher.stats.batches == 1
        assert batcher.stats.entries == 2
        assert async_future.result(timeout=0) == "queued"

    def test_explicit_flush_dispatches(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        future = stub.invoke_async("echo", 1)
        batcher.flush()
        assert future.done()
        assert future.result() == 1

    def test_singleton_batch_is_wire_identical(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        seen = []
        original = transport.invoke

        def spying_invoke(endpoint_id, request):
            seen.append(request)
            return original(endpoint_id, request)

        transport.invoke = spying_invoke
        try:
            assert stub.invoke_async("echo", 9).result(timeout=0) == 9
        finally:
            transport.invoke = original
        # One entry flies as a plain Request, not a BatchRequest.
        assert len(seen) == 1
        assert isinstance(seen[0], Request)
        assert batcher.stats.batches == 1
        assert batcher.stats.entries == 1


class TestPerEntrySemantics:
    def test_application_error_stays_per_entry(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, _ = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        good = stub.invoke_async("echo", 1)
        bad = stub.invoke_async("explode")
        also_good = stub.invoke_async("echo", 2)
        assert good.result(timeout=0) == 1
        assert also_good.result(timeout=0) == 2
        with pytest.raises(ApplicationError, match="kaboom"):
            bad.result(timeout=0)

    def test_unresolved_entry_becomes_connect_error(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, _ = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        ghost = Stub(
            transport,
            dataclasses.replace(skeleton.ref(), object_id="no-such-object"),
            batcher=stub._batcher,
        )
        real = stub.invoke_async("echo", 1)
        missing = ghost.invoke_async("echo", 2)
        assert real.result(timeout=0) == 1
        with pytest.raises(ConnectError, match="no-such-object"):
            missing.result(timeout=0)

    def test_whole_batch_failure_fails_every_entry(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, _ = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        futures = [stub.invoke_async("echo", i) for i in range(3)]
        transport.kill(skeleton.endpoint_id)
        for future in futures:
            with pytest.raises(ConnectError):
                future.result(timeout=0)

    def test_zero_copy_payloads_ride_batches_untouched(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, _ = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        seen = []
        original = transport.invoke_batch

        def spying_invoke_batch(endpoint_id, batch):
            seen.append(batch)
            return original(endpoint_id, batch)

        transport.invoke_batch = spying_invoke_batch
        try:
            futures = [stub.invoke_async("echo", i) for i in range(2)]
            assert gather(futures) == [0, 1]
        finally:
            transport.invoke_batch = original
        assert len(seen) == 1
        assert isinstance(seen[0], BatchRequest)
        for entry in seen[0].entries:
            assert is_zero_copy(entry.payload)


class TestCompleterContract:
    def test_completer_owns_completion(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        _, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        request = Request(
            object_id=skeleton.object_id, method="echo",
            payload=_marshal(("hello",)), caller="test",
        )
        outcomes = []

        def completer(future, response, error):
            outcomes.append((response, error))
            future.set_result("completer-made-this")

        future = batcher.submit(skeleton.endpoint_id, request, completer)
        assert future.result(timeout=0) == "completer-made-this"
        (response, error), = outcomes
        assert error is None
        assert response.kind == "result"

    def test_completer_gets_error_on_batch_failure(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        _, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        request = Request(
            object_id=skeleton.object_id, method="echo",
            payload=_marshal(("x",)), caller="test",
        )
        outcomes = []

        def completer(future, response, error):
            outcomes.append((response, error))
            future.set_exception(error)

        future = batcher.submit(skeleton.endpoint_id, request, completer)
        transport.kill(skeleton.endpoint_id)
        with pytest.raises(ConnectError):
            future.result(timeout=0)
        (response, error), = outcomes
        assert response is None
        assert isinstance(error, ConnectError)

    def test_raising_completer_fails_only_its_future(self):
        transport = DirectTransport()
        skeleton = exported(transport)
        stub, batcher = make_stub(transport, skeleton, max_batch=8, linger=0.0)
        request = Request(
            object_id=skeleton.object_id, method="echo",
            payload=_marshal((1,)), caller="test",
        )

        def bad_completer(future, response, error):
            raise RuntimeError("completer bug")

        broken = batcher.submit(skeleton.endpoint_id, request, bad_completer)
        healthy = stub.invoke_async("echo", 2)
        assert healthy.result(timeout=0) == 2
        with pytest.raises(RuntimeError, match="completer bug"):
            broken.result(timeout=0)


class TestCombinerDiscipline:
    """ThreadedTransport: callers elect themselves senders."""

    def test_sync_calls_still_correct_under_concurrency(self):
        transport = ThreadedTransport(workers_per_endpoint=4)
        try:
            skeleton = exported(transport)
            stub, batcher = make_stub(
                transport, skeleton, max_batch=16, linger=0.0,
                inflight_limit=2,
            )
            results = {}
            errors = []

            def worker(start, count):
                try:
                    for i in range(start, start + count):
                        results[i] = stub.echo(i)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(base * 50, 50))
                for base in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert all(results[i] == i for i in results)
            assert len(results) == 400
            # Every logical call was accounted, however it was grouped.
            assert batcher.stats.entries == 400
            assert batcher.stats.batches <= 400
        finally:
            transport.shutdown()

    def test_inflight_window_is_respected(self):
        transport = ThreadedTransport(workers_per_endpoint=4)
        try:
            skeleton = exported(transport)
            stub, batcher = make_stub(
                transport, skeleton, max_batch=4, linger=0.0,
                inflight_limit=2,
            )
            futures = [stub.invoke_async("echo", i) for i in range(64)]
            assert gather(futures, timeout=30.0) == list(range(64))
            assert batcher.stats.inflight_hwm <= 2
            assert batcher.stats.entries == 64
        finally:
            transport.shutdown()

    def test_concurrent_async_callers_coalesce(self):
        transport = ThreadedTransport(workers_per_endpoint=4)
        try:
            skeleton = exported(transport)
            stub, batcher = make_stub(
                transport, skeleton, max_batch=64, linger=0.0,
                inflight_limit=1,
            )
            barrier = threading.Barrier(8)
            errors = []

            def worker(base):
                try:
                    barrier.wait()
                    futures = [
                        stub.invoke_async("echo", base + i) for i in range(16)
                    ]
                    assert gather(futures, timeout=30.0) == [
                        base + i for i in range(16)
                    ]
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(base * 100,))
                for base in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert batcher.stats.entries == 128
            # With a single sender slot, concurrent windows must share
            # wire messages: strictly fewer batches than entries.
            assert batcher.stats.batches < batcher.stats.entries
        finally:
            transport.shutdown()


class TestStats:
    def test_coalesce_ratio(self):
        stats = BatcherStats()
        assert stats.coalesce_ratio() == 1.0
        stats.batches, stats.entries = 4, 12
        assert stats.coalesce_ratio() == 3.0


def _marshal(args, kwargs=None):
    from repro.rmi.fastpath import marshal_call

    return marshal_call(args, kwargs or {})
