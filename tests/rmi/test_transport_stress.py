"""Concurrency regressions in the transport layer.

Two bugs fixed alongside the fast-path work are pinned down here:

- ``messages_sent`` used an unsynchronized ``+= 1`` and lost counts under
  concurrent invokers; it is now a :class:`StripedCounter` and must be
  *exact*;
- ``ThreadedTransport.kill()`` removed the dispatcher but left the
  endpoint resolvable, so a racing invoke crashed with an internal
  "has no dispatcher" error instead of the ``ConnectError`` the elastic
  stub's retry loop feeds on.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import StripedCounter
from repro.errors import ConnectError
from repro.rmi.transport import (
    DirectTransport,
    Request,
    Response,
    ThreadedTransport,
)


class TestStripedCounter:
    def test_single_thread_counts(self):
        counter = StripedCounter()
        for _ in range(10):
            counter.increment()
        counter.increment(5)
        assert counter.value() == 15
        assert int(counter) == 15

    def test_concurrent_increments_are_exact(self):
        counter = StripedCounter()
        threads, per_thread = 8, 10_000

        def worker():
            for _ in range(per_thread):
                counter.increment()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value() == threads * per_thread

    def test_counts_survive_thread_death(self):
        counter = StripedCounter()
        t = threading.Thread(target=lambda: counter.increment(3))
        t.start()
        t.join()
        counter.increment()
        assert counter.value() == 4


def _echo_handler(request: Request) -> Response:
    return Response(kind="result", payload=b"")


class TestMessagesSentExactness:
    def test_concurrent_invokers_lose_no_counts(self):
        """The satellite fix: N threads x M calls must count to exactly
        N*M — the old unsynchronized += dropped increments."""
        transport = DirectTransport()
        ep = transport.add_endpoint("counted")
        ep.export("obj", _echo_handler)
        request = Request(object_id="obj", method="echo", payload=b"")
        threads, per_thread = 16, 2_000

        def caller():
            for _ in range(per_thread):
                transport.invoke(ep.endpoint_id, request)

        pool = [threading.Thread(target=caller) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert transport.messages_sent == threads * per_thread

    def test_threaded_transport_counts_exactly(self):
        transport = ThreadedTransport(workers_per_endpoint=4)
        try:
            ep = transport.add_endpoint("counted")
            ep.export("obj", _echo_handler)
            request = Request(object_id="obj", method="echo", payload=b"")
            threads, per_thread = 8, 200

            def caller():
                for _ in range(per_thread):
                    transport.invoke(ep.endpoint_id, request)

            pool = [threading.Thread(target=caller) for _ in range(threads)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            assert transport.messages_sent == threads * per_thread
        finally:
            transport.shutdown()

    def test_failed_resolves_are_not_counted(self):
        transport = DirectTransport()
        ep = transport.add_endpoint("dead")
        ep.export("obj", _echo_handler)
        transport.kill(ep.endpoint_id)
        request = Request(object_id="obj", method="echo", payload=b"")
        with pytest.raises(ConnectError):
            transport.invoke(ep.endpoint_id, request)
        assert transport.messages_sent == 0


class TestKilledEndpointStaysResolvable:
    def test_killed_threaded_endpoint_raises_is_down(self):
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("victim")
            ep.export("obj", _echo_handler)
            transport.kill(ep.endpoint_id)
            request = Request(object_id="obj", method="echo", payload=b"")
            with pytest.raises(ConnectError, match="is down"):
                transport.invoke(ep.endpoint_id, request)
        finally:
            transport.shutdown()

    def test_missing_dispatcher_race_surfaces_as_is_down(self):
        """A caller that resolved the endpoint just before kill() finds
        the dispatcher gone; that must read as the same 'is down'
        ConnectError, never as a missing-dispatcher internal error."""
        transport = ThreadedTransport()
        try:
            ep = transport.add_endpoint("victim")
            ep.export("obj", _echo_handler)
            # kill drops the executor; revive re-marks the endpoint
            # alive, recreating exactly the alive-but-no-dispatcher
            # window a racing invoke can observe.
            transport.kill(ep.endpoint_id)
            transport.revive(ep.endpoint_id)
            request = Request(object_id="obj", method="echo", payload=b"")
            with pytest.raises(ConnectError, match="is down"):
                transport.invoke(ep.endpoint_id, request)
        finally:
            transport.shutdown()

    def test_killing_one_endpoint_leaves_others_serving(self):
        transport = ThreadedTransport()
        try:
            victim = transport.add_endpoint("victim")
            victim.export("obj", _echo_handler)
            survivor = transport.add_endpoint("survivor")
            survivor.export("obj", _echo_handler)
            transport.kill(victim.endpoint_id)
            request = Request(object_id="obj", method="echo", payload=b"")
            response = transport.invoke(survivor.endpoint_id, request)
            assert response.kind == "result"
        finally:
            transport.shutdown()
