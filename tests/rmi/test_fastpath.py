"""Fast-path marshalling: the immutability analyzer, the zero-copy and
cached modes, and the invariant that RMI call semantics are unchanged.

The contract under test (DESIGN.md "fast-path invocation layer"):

- provably-immutable payloads may pass by reference (sharing an object
  nobody can mutate is indistinguishable from copying it);
- anything mutable still takes the pickled pass-by-value path — the
  callee always sees a deep copy;
- a RemoteRef passes by reference, as remote objects do in Java RMI;
- MarshalError/UnmarshalError behaviour is identical in every mode.
"""

from __future__ import annotations

import pytest

from repro.errors import ApplicationError, MarshalError, UnmarshalError
from repro.rmi.fastpath import (
    MODES,
    FastPayload,
    MarshalCache,
    is_immutable,
    marshal_call,
    marshal_cache,
    marshal_result,
    register_immutable,
    set_mode,
    unmarshal_call,
    unmarshal_result,
)
from repro.rmi import fastpath
from repro.rmi.marshal import unmarshal_value
from repro.rmi.remote import Remote, RemoteRef, Skeleton, Stub
from repro.rmi.transport import DirectTransport


@pytest.fixture(autouse=True)
def _restore_mode():
    previous = fastpath.mode()
    yield
    set_mode(previous)
    marshal_cache().clear()


class TestImmutabilityAnalyzer:
    @pytest.mark.parametrize(
        "value",
        [
            "text",
            b"raw",
            42,
            3.14,
            True,
            None,
            2 + 3j,
            (),
            ("a", 1, b"x"),
            (1, (2, (3, (4,)))),
            frozenset({"x", "y"}),
            (frozenset({1, 2}), ("nested", b"ok")),
            RemoteRef("ep-1", "obj-1", uid=3),
            ("ref-in-tuple", RemoteRef("ep-1", "obj-1")),
        ],
    )
    def test_provably_immutable(self, value):
        assert is_immutable(value)

    @pytest.mark.parametrize(
        "value",
        [
            [1, 2],
            {"k": "v"},
            {1, 2},
            bytearray(b"x"),
            (1, [2]),
            (1, (2, [3])),
            (frozenset(), [1]),
        ],
    )
    def test_mutable_rejected(self, value):
        assert not is_immutable(value)

    def test_deeply_nested_mutability_found(self):
        assert not is_immutable(("a", ("b", ("c", ("d", ["leak"])))))

    def test_subclasses_are_not_trusted(self):
        class SneakyStr(str):
            pass

        class SneakyTuple(tuple):
            pass

        assert not is_immutable(SneakyStr("looks safe"))
        assert not is_immutable(SneakyTuple((1, 2)))
        assert not is_immutable((1, SneakyStr("nested")))

    def test_register_immutable_opt_in(self):
        class Frozen:
            pass

        try:
            assert not is_immutable(Frozen())
            register_immutable(Frozen)
            assert is_immutable(Frozen())
            assert is_immutable((1, Frozen()))
        finally:
            fastpath._registered_immutable.discard(Frozen)


class TestModes:
    def test_set_mode_returns_previous(self):
        previous = fastpath.mode()
        assert set_mode("pickle") == previous
        assert fastpath.mode() == "pickle"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            set_mode("turbo")

    def test_all_modes_listed(self):
        assert set(MODES) == {"zerocopy", "cache", "pickle"}


class TestZeroCopyMarshalling:
    def test_immutable_call_passes_by_reference(self):
        set_mode("zerocopy")
        args = ("get", b"\x00" * 128, 7)
        payload = marshal_call(args, {})
        assert isinstance(payload, FastPayload)
        out_args, out_kwargs = unmarshal_call(payload)
        assert out_args is args
        assert out_kwargs == {}

    def test_kwargs_dict_is_fresh_per_delivery(self):
        set_mode("zerocopy")
        payload = marshal_call(("x",), {"flag": True})
        _, first = unmarshal_call(payload)
        _, second = unmarshal_call(payload)
        assert first == second == {"flag": True}
        assert first is not second  # one callee's **kwargs never aliases another's

    def test_mutable_args_still_deep_copied(self):
        set_mode("zerocopy")
        args = (["mutable"],)
        payload = marshal_call(args, {})
        assert isinstance(payload, bytes)
        out_args, _ = unmarshal_call(payload)
        assert out_args == args
        assert out_args[0] is not args[0]

    def test_immutable_result_passes_by_reference(self):
        set_mode("zerocopy")
        blob = b"\x01" * 256
        reply = marshal_result(blob)
        assert isinstance(reply, FastPayload)
        assert unmarshal_result(reply) is blob

    def test_mutable_result_still_copied(self):
        set_mode("zerocopy")
        value = {"k": [1]}
        reply = marshal_result(value)
        assert isinstance(reply, bytes)
        out = unmarshal_result(reply)
        assert out == value and out is not value

    def test_pickle_mode_never_shares(self):
        set_mode("pickle")
        blob = b"\x02" * 256
        payload = marshal_call((blob,), {})
        assert isinstance(payload, bytes)
        (out,), _ = unmarshal_call(payload)
        assert out == blob and out is not blob


class TestMarshalCache:
    def test_hits_and_misses_counted(self):
        cache = MarshalCache(capacity=8)
        first = cache.dumps(("op", 1))
        second = cache.dumps(("op", 1))
        assert first is second  # the memoized bytes object itself
        assert (cache.hits, cache.misses) == (1, 1)

    def test_equal_values_of_different_types_do_not_collide(self):
        cache = MarshalCache()
        assert unmarshal_value(cache.dumps(1)) == 1
        assert type(unmarshal_value(cache.dumps(1.0))) is float
        assert type(unmarshal_value(cache.dumps(True))) is bool
        assert type(unmarshal_value(cache.dumps(1))) is int
        assert len(cache) == 3

    def test_mutable_values_never_cached(self):
        cache = MarshalCache()
        cache.dumps([1, 2])
        cache.dumps({"k": 1})
        assert len(cache) == 0

    def test_lru_eviction_respects_capacity(self):
        cache = MarshalCache(capacity=2)
        cache.dumps("a")
        cache.dumps("b")
        cache.dumps("a")  # refresh "a"
        cache.dumps("c")  # evicts "b"
        assert len(cache) == 2
        cache.dumps("a")
        assert cache.hits == 2  # "a" survived the eviction

    def test_dumps_call_roundtrip_gives_fresh_kwargs(self):
        cache = MarshalCache()
        payload = cache.dumps_call(("get", "key", 1))
        args1, kwargs1 = unmarshal_value(payload)
        args2, kwargs2 = unmarshal_value(cache.dumps_call(("get", "key", 1)))
        assert args1 == args2 == ("get", "key", 1)
        assert kwargs1 == {} and kwargs1 is not kwargs2
        assert cache.hits == 1

    def test_cache_mode_uses_process_cache(self):
        set_mode("cache")
        marshal_cache().clear()
        args = ("idempotent", 99)
        first = marshal_call(args, {})
        second = marshal_call(args, {})
        assert isinstance(first, bytes) and first is second


class Holder(Remote):
    """Test service capturing exactly what the skeleton hands it."""

    def __init__(self):
        self.received = None

    def take(self, value):
        self.received = value
        return value

    def mutate(self, items):
        self.received = items
        items.append("server-side")
        return len(items)

    def boom(self):
        raise ValueError("application bug")


@pytest.fixture
def wired():
    transport = DirectTransport()
    ep = transport.add_endpoint("fastpath-test")
    impl = Holder()
    skeleton = Skeleton(impl, transport, ep.endpoint_id)
    return impl, Stub(transport, skeleton.ref())


class TestEndToEndSemantics:
    """The full Stub -> transport -> Skeleton path in every mode."""

    @pytest.mark.parametrize("mode", MODES)
    def test_mutable_argument_mutation_never_leaks_back(self, wired, mode):
        set_mode(mode)
        impl, stub = wired
        items = ["client"]
        assert stub.mutate(items) == 2
        assert items == ["client"]  # pass-by-value held
        assert impl.received == ["client", "server-side"]

    def test_immutable_argument_shared_in_zerocopy(self, wired):
        set_mode("zerocopy")
        impl, stub = wired
        blob = b"\x07" * 512
        assert stub.take(blob) is blob
        assert impl.received is blob

    def test_immutable_argument_copied_in_pickle_mode(self, wired):
        set_mode("pickle")
        impl, stub = wired
        blob = b"\x07" * 512
        result = stub.take(blob)
        assert result == blob and result is not blob
        assert impl.received is not blob

    @pytest.mark.parametrize("mode", MODES)
    def test_remote_ref_passes_by_reference(self, wired, mode):
        set_mode(mode)
        impl, stub = wired
        ref = RemoteRef("ep-far", "obj-far", uid=9)
        assert stub.take(ref) == ref
        assert impl.received == ref  # the receiver can build a stub from it

    def test_remote_ref_identity_preserved_in_zerocopy(self, wired):
        set_mode("zerocopy")
        impl, stub = wired
        ref = RemoteRef("ep-far", "obj-far", uid=9)
        stub.take(ref)
        assert impl.received is ref

    @pytest.mark.parametrize("mode", MODES)
    def test_marshal_error_unchanged(self, wired, mode):
        set_mode(mode)
        _, stub = wired
        with pytest.raises(MarshalError):
            stub.take(lambda: None)  # unpicklable, and not immutable

    @pytest.mark.parametrize("mode", MODES)
    def test_unmarshal_error_unchanged(self, mode):
        set_mode(mode)
        with pytest.raises(UnmarshalError):
            unmarshal_call(b"definitely not a pickle")
        with pytest.raises(UnmarshalError):
            unmarshal_result(b"definitely not a pickle")

    @pytest.mark.parametrize("mode", MODES)
    def test_application_exceptions_still_propagate(self, wired, mode):
        set_mode(mode)
        _, stub = wired
        with pytest.raises(ApplicationError) as info:
            stub.boom()
        assert isinstance(info.value.cause, ValueError)
