"""Tests for the RMI registry."""

import pytest

from repro.errors import AlreadyBoundError, NotBoundError
from repro.rmi.registry import Registry
from repro.rmi.remote import RemoteRef


@pytest.fixture
def registry():
    return Registry()


REF_A = RemoteRef("ep-1", "obj-1")
REF_B = RemoteRef("ep-2", "obj-2")


class TestRegistry:
    def test_bind_and_lookup(self, registry):
        registry.bind("svc", REF_A)
        assert registry.lookup("svc") == REF_A

    def test_bind_existing_raises(self, registry):
        registry.bind("svc", REF_A)
        with pytest.raises(AlreadyBoundError):
            registry.bind("svc", REF_B)

    def test_rebind_replaces(self, registry):
        registry.bind("svc", REF_A)
        registry.rebind("svc", REF_B)
        assert registry.lookup("svc") == REF_B

    def test_rebind_creates_if_absent(self, registry):
        registry.rebind("svc", REF_A)
        assert registry.lookup("svc") == REF_A

    def test_lookup_missing_raises(self, registry):
        with pytest.raises(NotBoundError):
            registry.lookup("missing")

    def test_unbind(self, registry):
        registry.bind("svc", REF_A)
        registry.unbind("svc")
        with pytest.raises(NotBoundError):
            registry.lookup("svc")

    def test_unbind_missing_raises(self, registry):
        with pytest.raises(NotBoundError):
            registry.unbind("missing")

    def test_list_is_sorted(self, registry):
        registry.bind("zeta", REF_A)
        registry.bind("alpha", REF_B)
        assert registry.list() == ["alpha", "zeta"]
