"""ThreadedTransport dispatch saturation: queued/busy worker gauges.

Drives one endpoint with far more concurrent calls than its worker
pool, and asserts the per-endpoint dispatch statistics tell the truth:
``busy`` pins at the worker count, the overflow shows up as ``queued``,
and — with an :class:`~repro.obs.Observability` attached — the same
numbers surface as ``rmi.server.dispatch_queued.*`` /
``rmi.server.dispatch_busy.*`` gauges.
"""

import threading
import time

from repro.obs import Observability
from repro.rmi.transport import Request, Response, ThreadedTransport

WORKERS = 2
CALLERS = 10  # concurrency >> max_workers


class _ParkedEndpoint:
    """An endpoint whose handler parks until released."""

    def __init__(self, transport):
        self.gate = threading.Event()
        self.entered = threading.Semaphore(0)
        self.endpoint = transport.add_endpoint("member-sat")
        self.endpoint.export("obj", self._handle)

    def _handle(self, request: Request) -> Response:
        self.entered.release()
        self.gate.wait(timeout=10.0)
        return Response(kind="result", payload=request.payload)


def _saturate(transport, parked):
    """Launch CALLERS concurrent invokes; returns the joinable threads."""
    threads = [
        threading.Thread(
            target=lambda: transport.invoke(
                parked.endpoint.endpoint_id, Request("obj", "m", b"")
            )
        )
        for _ in range(CALLERS)
    ]
    for t in threads:
        t.start()
    # Both workers are inside the handler; the rest sit in the queue.
    for _ in range(WORKERS):
        assert parked.entered.acquire(timeout=5.0)
    return threads


class TestDispatchSaturation:
    def test_stats_report_busy_and_queued(self):
        transport = ThreadedTransport(workers_per_endpoint=WORKERS)
        try:
            parked = _ParkedEndpoint(transport)
            threads = _saturate(transport, parked)
            try:
                deadline = time.monotonic() + 5.0
                stats = transport.dispatch_stats(
                    parked.endpoint.endpoint_id
                )
                while (
                    stats["queued"] < CALLERS - WORKERS
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                    stats = transport.dispatch_stats(
                        parked.endpoint.endpoint_id
                    )
                assert stats["workers"] == WORKERS
                assert stats["busy"] == WORKERS
                assert stats["queued"] == CALLERS - WORKERS
            finally:
                parked.gate.set()
                for t in threads:
                    t.join(timeout=10.0)
            stats = transport.dispatch_stats(parked.endpoint.endpoint_id)
            assert stats["busy"] == 0
            assert stats["queued"] == 0
        finally:
            transport.shutdown()

    def test_unknown_endpoint_has_no_stats(self):
        transport = ThreadedTransport()
        try:
            assert transport.dispatch_stats("nope") is None
        finally:
            transport.shutdown()

    def test_obs_gauges_export_saturation(self):
        transport = ThreadedTransport(workers_per_endpoint=WORKERS)
        obs = Observability()
        transport.set_obs(obs)
        try:
            parked = _ParkedEndpoint(transport)
            threads = _saturate(transport, parked)
            try:
                deadline = time.monotonic() + 5.0
                queued = obs.registry.gauge(
                    "rmi.server.dispatch_queued.member-sat"
                )
                busy = obs.registry.gauge(
                    "rmi.server.dispatch_busy.member-sat"
                )
                while queued.value < 1 and time.monotonic() < deadline:
                    time.sleep(0.01)
                # Gauges sample at submit time: the last submission saw a
                # saturated pool and a non-empty queue.
                assert queued.value >= 1
                assert busy.value >= 1
            finally:
                parked.gate.set()
                for t in threads:
                    t.join(timeout=10.0)
        finally:
            transport.shutdown()
