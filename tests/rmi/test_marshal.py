"""Tests for pass-by-value marshalling."""

import pytest

from repro.errors import MarshalError, UnmarshalError
from repro.rmi.marshal import marshal_value, roundtrip, unmarshal_value
from repro.rmi.remote import RemoteRef


class TestMarshalling:
    def test_roundtrip_scalars(self):
        for value in (1, 2.5, "s", b"b", True, None):
            assert roundtrip(value) == value

    def test_roundtrip_containers(self):
        value = {"a": [1, 2, (3, 4)], "b": {"nested": {5, 6}}}
        assert roundtrip(value) == value

    def test_roundtrip_is_a_copy(self):
        """Pass-by-value: the receiver must see a copy, not the sender's
        object (Java RMI serialization semantics)."""
        original = {"k": [1, 2]}
        copy = roundtrip(original)
        copy["k"].append(3)
        assert original == {"k": [1, 2]}

    def test_exceptions_survive_roundtrip(self):
        err = roundtrip(ValueError("boom"))
        assert isinstance(err, ValueError)
        assert str(err) == "boom"

    def test_remote_ref_passes_unchanged(self):
        """Remote references pass by reference: identity fields intact."""
        ref = RemoteRef("ep-1", "obj-1", uid=3)
        assert roundtrip(ref) == ref

    def test_unmarshalable_value_raises(self):
        with pytest.raises(MarshalError):
            marshal_value(lambda x: x)  # lambdas are unpicklable

    def test_corrupt_payload_raises(self):
        with pytest.raises(UnmarshalError):
            unmarshal_value(b"\x80garbage")


class TestWireProtocol:
    def test_marshals_at_highest_protocol(self):
        """Protocol 5 frames start with ``\\x80\\x05``: out-of-band
        buffer support is what the cpu fastpath builds on, so the
        marshal layer must not silently fall back to an older protocol.
        """
        import pickle

        assert pickle.HIGHEST_PROTOCOL >= 5
        payload = marshal_value({"k": b"v" * 64})
        assert payload[:2] == b"\x80\x05"

    def test_accepts_older_protocol_payloads(self):
        """Wire compatibility: peers that still emit protocol-2 frames
        (the previous default) must stay readable."""
        import pickle

        value = {"a": [1, 2], "b": b"bytes"}
        for protocol in (2, 3, 4):
            assert unmarshal_value(pickle.dumps(value, protocol)) == value
