"""Tests for the command-line interface."""

import textwrap

import pytest

from repro.cli import main


class TestFigureCommand:
    def test_agility_panel(self, capsys):
        assert main(["figure", "7c"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7c" in out
        assert "elasticrmi" in out
        assert "overprovisioning" in out

    def test_workload_trace(self, capsys):
        assert main(["figure", "7a", "--app", "paxos"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7a (paxos)" in out

    def test_provisioning_figure(self, capsys):
        assert main(["figure", "8a"]) == 0
        out = capsys.readouterr().out
        assert "provisioning latency" in out
        assert "marketcetera" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "9z"]) == 2


class TestAblationCommand:
    def test_policy_ablation(self, capsys):
        assert main(["ablation", "policy"]) == 0
        out = capsys.readouterr().out
        assert "fine-grained" in out
        assert "cpu-mem-thresholds" in out

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["ablation", "nonsense"])


class TestAnalyzeCommand:
    def test_analyze_real_app(self, capsys):
        code = main(["analyze", "repro.apps.dcs.service:CoordinationService"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CoordinationService" in out
        assert "fine-grained" in out

    def test_analyze_bad_target_format(self, capsys):
        assert main(["analyze", "no-colon"]) == 2

    def test_analyze_failing_class_exits_nonzero(self, capsys, tmp_path,
                                                 monkeypatch):
        module_dir = tmp_path / "clipkg"
        module_dir.mkdir()
        (module_dir / "__init__.py").write_text("")
        (module_dir / "bad.py").write_text(
            textwrap.dedent(
                """
                from repro.core.api import ElasticObject

                class Bad(ElasticObject):
                    def __init__(self):
                        super().__init__()
                        self.set_min_pool_size(1)

                    def op(self):
                        pass
                """
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        assert main(["analyze", "clipkg.bad:Bad"]) == 1


class TestTransformCommand:
    SOURCE = textwrap.dedent(
        """
        class C(ElasticObject):
            x = 0

            # synchronized
            def bar(self):
                pass
        """
    )

    def test_transform_to_stdout(self, capsys, tmp_path):
        src = tmp_path / "c.py"
        src.write_text(self.SOURCE)
        assert main(["transform", str(src)]) == 0
        out = capsys.readouterr().out
        assert "elastic_field(default=0)" in out
        assert "@synchronized" in out

    def test_transform_to_file(self, capsys, tmp_path):
        src = tmp_path / "c.py"
        dst = tmp_path / "c_out.py"
        src.write_text(self.SOURCE)
        assert main(["transform", str(src), "-o", str(dst)]) == 0
        assert "elastic_field(default=0)" in dst.read_text()


class TestScenarioCommand:
    def test_list_shows_the_matrix(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("diurnal", "flash-crowd", "thundering-herd",
                     "hot-key", "multi-tenant"):
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "diurnal" in err

    def test_output_with_all_rejected(self, capsys, tmp_path):
        out_file = tmp_path / "s.json"
        assert main(["scenario", "all", "-o", str(out_file)]) == 2
        assert "--summary-dir" in capsys.readouterr().err

    def test_run_writes_valid_summary(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "s.json"
        code = main([
            "scenario", "diurnal", "--scale", "0.05",
            "-o", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario diurnal" in out
        doc = json.loads(out_file.read_text())
        assert doc["schema"] == "repro.obs/v1"
        assert doc["scenario"]["name"] == "diurnal"
        assert doc["scenario"]["scale"] == 0.05

    def test_summary_dir_replays_byte_identically(self, capsys, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for directory in (a, b):
            code = main([
                "scenario", "diurnal", "--scale", "0.05",
                "--summary-dir", str(directory),
            ])
            assert code == 0
        name = "SCENARIO_diurnal.json"
        assert (a / name).read_bytes() == (b / name).read_bytes()

    def test_seed_override_changes_summary(self, capsys, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        assert main(["scenario", "diurnal", "--scale", "0.05",
                     "--summary-dir", str(a)]) == 0
        assert main(["scenario", "diurnal", "--scale", "0.05",
                     "--seed", "4242", "--summary-dir", str(b)]) == 0
        name = "SCENARIO_diurnal.json"
        assert (a / name).read_bytes() != (b / name).read_bytes()


class TestBenchScenarioSuite:
    def test_suite_writes_reports_and_self_check_passes(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("ERMI_BENCH_SCALE", "0.05")
        out_dir = tmp_path / "reports"
        code = main([
            "bench", "--suite", "scenario",
            "--scenario-dir", str(out_dir),
            "--check-scenario", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench check OK (scenario)" in out
        names = {p.name for p in out_dir.glob("BENCH_scenario_*.json")}
        assert "BENCH_scenario_diurnal.json" in names
        assert len(names) >= 4

    def test_check_against_missing_baselines_fails(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("ERMI_BENCH_SCALE", "0.05")
        out_dir = tmp_path / "reports"
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main([
            "bench", "--suite", "scenario",
            "--scenario-dir", str(out_dir),
            "--check-scenario", str(empty),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "baseline missing" in captured.out
        assert "REGRESSION (scenario)" in captured.err
