"""Tests for the command-line interface."""

import textwrap

import pytest

from repro.cli import main


class TestFigureCommand:
    def test_agility_panel(self, capsys):
        assert main(["figure", "7c"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7c" in out
        assert "elasticrmi" in out
        assert "overprovisioning" in out

    def test_workload_trace(self, capsys):
        assert main(["figure", "7a", "--app", "paxos"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7a (paxos)" in out

    def test_provisioning_figure(self, capsys):
        assert main(["figure", "8a"]) == 0
        out = capsys.readouterr().out
        assert "provisioning latency" in out
        assert "marketcetera" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "9z"]) == 2


class TestAblationCommand:
    def test_policy_ablation(self, capsys):
        assert main(["ablation", "policy"]) == 0
        out = capsys.readouterr().out
        assert "fine-grained" in out
        assert "cpu-mem-thresholds" in out

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["ablation", "nonsense"])


class TestAnalyzeCommand:
    def test_analyze_real_app(self, capsys):
        code = main(["analyze", "repro.apps.dcs.service:CoordinationService"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CoordinationService" in out
        assert "fine-grained" in out

    def test_analyze_bad_target_format(self, capsys):
        assert main(["analyze", "no-colon"]) == 2

    def test_analyze_failing_class_exits_nonzero(self, capsys, tmp_path,
                                                 monkeypatch):
        module_dir = tmp_path / "clipkg"
        module_dir.mkdir()
        (module_dir / "__init__.py").write_text("")
        (module_dir / "bad.py").write_text(
            textwrap.dedent(
                """
                from repro.core.api import ElasticObject

                class Bad(ElasticObject):
                    def __init__(self):
                        super().__init__()
                        self.set_min_pool_size(1)

                    def op(self):
                        pass
                """
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        assert main(["analyze", "clipkg.bad:Bad"]) == 1


class TestTransformCommand:
    SOURCE = textwrap.dedent(
        """
        class C(ElasticObject):
            x = 0

            # synchronized
            def bar(self):
                pass
        """
    )

    def test_transform_to_stdout(self, capsys, tmp_path):
        src = tmp_path / "c.py"
        src.write_text(self.SOURCE)
        assert main(["transform", str(src)]) == 0
        out = capsys.readouterr().out
        assert "elastic_field(default=0)" in out
        assert "@synchronized" in out

    def test_transform_to_file(self, capsys, tmp_path):
        src = tmp_path / "c.py"
        dst = tmp_path / "c_out.py"
        src.write_text(self.SOURCE)
        assert main(["transform", str(src), "-o", str(dst)]) == 0
        assert "elastic_field(default=0)" in dst.read_text()
