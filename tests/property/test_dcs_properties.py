"""Property-based tests for the DCS namespace: random operation
schedules must keep the tree, the children index, and the total order
consistent with a model."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.dcs.service import (
    BadVersionError,
    CoordinationService,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)
from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel

NAMES = ("a", "b", "c")

operations = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(NAMES), st.sampled_from(NAMES)),
        st.tuples(st.just("create-top"), st.sampled_from(NAMES), st.none()),
        st.tuples(st.just("set"), st.sampled_from(NAMES), st.integers(0, 9)),
        st.tuples(st.just("delete"), st.sampled_from(NAMES), st.none()),
    ),
    max_size=30,
)


def fresh_dcs():
    kernel = Kernel()
    runtime = ElasticRuntime.simulated(
        kernel, nodes=4, provisioner=InstantProvisioner()
    )
    runtime.new_pool(CoordinationService)
    kernel.run_until(1.0)
    members = runtime.pool("CoordinationService").active_members()
    return members[0].instance  # direct instance: raw exceptions


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations)
def test_namespace_matches_dict_model(schedule):
    dcs = fresh_dcs()
    model: dict[str, object] = {}  # path -> data
    last_zxid = 0

    for op, name, arg in schedule:
        if op == "create-top":
            path = f"/{name}"
            try:
                zxid = dcs.create(path, data=None)
                assert path not in model
                model[path] = None
            except NodeExistsError:
                assert path in model
                continue
        elif op == "create":
            parent, child = f"/{name}", f"/{name}/{arg}"
            try:
                zxid = dcs.create(child, data=None)
                assert parent in model and child not in model
                model[child] = None
            except NoNodeError:
                assert parent not in model
                continue
            except NodeExistsError:
                assert child in model
                continue
        elif op == "set":
            path = f"/{name}"
            try:
                zxid = dcs.set_data(path, arg)
                assert path in model
                model[path] = arg
            except NoNodeError:
                assert path not in model
                continue
        else:  # delete
            path = f"/{name}"
            try:
                dcs.delete(path)
                assert path in model
                assert not any(
                    p.startswith(path + "/") for p in model
                ), "deleted a node that still had children"
                del model[path]
                continue  # deletes also draw zxids; order checked below
            except NoNodeError:
                assert path not in model
                continue
            except NotEmptyError:
                assert any(p.startswith(path + "/") for p in model)
                continue
        # Total order: every successful mutation drew a larger zxid.
        assert zxid > last_zxid
        last_zxid = zxid

    # Final coherence: model contents and children indexes agree.
    for path, data in model.items():
        record = dcs.get(path)
        assert record["data"] == data
    top_level = {p[1:] for p in model if "/" not in p[1:]}
    assert set(dcs.get_children("/")) == top_level
    for top in top_level:
        expected_children = {
            p.rsplit("/", 1)[1] for p in model if p.startswith(f"/{top}/")
        }
        assert set(dcs.get_children(f"/{top}")) == expected_children
