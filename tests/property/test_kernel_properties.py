"""Property-based tests for the simulation kernel and lock manager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.locks import LockManager
from repro.sim.kernel import Kernel


class TestKernelProperties:
    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time_order(self, times):
        kernel = Kernel()
        fired = []
        for t in times:
            kernel.call_at(t, lambda t=t: fired.append(kernel.clock.now()))
        kernel.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_clock_ends_at_last_event(self, times):
        kernel = Kernel()
        for t in times:
            kernel.call_at(t, lambda: None)
        kernel.run()
        assert kernel.clock.now() == max(times)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
        st.data(),
    )
    @settings(max_examples=100)
    def test_cancellation_removes_exactly_the_cancelled(self, times, data):
        kernel = Kernel()
        fired = []
        calls = [
            kernel.call_at(t, lambda i=i: fired.append(i))
            for i, t in enumerate(times)
        ]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(times) - 1), max_size=len(times))
        )
        for i in to_cancel:
            calls[i].cancel()
        kernel.run()
        assert sorted(fired) == [
            i for i in range(len(times)) if i not in to_cancel
        ]

    @given(st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_run_until_is_composable(self, times):
        """Running to T1 then T2 fires the same events as running to T2."""
        single, split = Kernel(), Kernel()
        fired_single, fired_split = [], []
        for t in times:
            single.call_at(t, lambda t=t: fired_single.append(t))
            split.call_at(t, lambda t=t: fired_split.append(t))
        single.run_until(50.0)
        mid = max(times) / 2
        split.run_until(mid)
        split.run_until(50.0)
        assert fired_single == fired_split


class TestLockManagerProperties:
    ops = st.lists(
        st.tuples(
            st.sampled_from(["try", "unlock"]),
            st.sampled_from(["L1", "L2"]),
            st.sampled_from(["a", "b", "c"]),
        ),
        max_size=60,
    )

    @given(ops)
    @settings(max_examples=100)
    def test_single_holder_invariant(self, operations):
        """After any operation sequence, each lock has at most one
        holder, holders match successful acquisitions, and hold counts
        stay positive."""
        manager = LockManager()
        model: dict[str, tuple[str, int]] = {}  # lock -> (owner, count)
        for op, lock, owner in operations:
            if op == "try":
                token = manager.try_lock(lock, owner)
                held = model.get(lock)
                if held is None:
                    assert token is not None
                    model[lock] = (owner, 1)
                elif held[0] == owner:
                    assert token is not None
                    model[lock] = (owner, held[1] + 1)
                else:
                    assert token is None
            else:
                held = model.get(lock)
                if held is not None and held[0] == owner:
                    manager.unlock(lock, owner)
                    if held[1] == 1:
                        del model[lock]
                    else:
                        model[lock] = (owner, held[1] - 1)
                else:
                    try:
                        manager.unlock(lock, owner)
                        raise AssertionError("unlock should have failed")
                    except Exception:
                        pass
            for name, (expect_owner, _) in model.items():
                assert manager.holder(name) == expect_owner

    @given(ops)
    @settings(max_examples=50)
    def test_fencing_tokens_strictly_increase(self, operations):
        manager = LockManager()
        held: dict[str, str] = {}
        last_token = 0
        for op, lock, owner in operations:
            if op == "try":
                token = manager.try_lock(lock, owner)
                if token is not None and lock not in held:
                    # fresh grant (not reentrant): token must increase
                    assert token > last_token
                    last_token = max(last_token, token)
                    held[lock] = owner
            else:
                if held.get(lock) == owner:
                    try:
                        manager.unlock(lock, owner)
                        if manager.holder(lock) is None:
                            held.pop(lock, None)
                    except Exception:
                        pass
