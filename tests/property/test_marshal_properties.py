"""Property-based tests for marshalling: round-trip fidelity and
pass-by-value isolation for arbitrary composite values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmi.marshal import roundtrip
from repro.rmi.remote import RemoteRef

scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
    st.text(max_size=30), st.binary(max_size=30),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=12,
)


class TestMarshalProperties:
    @given(values)
    @settings(max_examples=200)
    def test_roundtrip_is_identity(self, value):
        assert roundtrip(value) == value

    @given(st.lists(st.integers(), min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_roundtrip_yields_independent_copy(self, value):
        original = list(value)
        copy = roundtrip(value)
        copy.append(999)
        assert value == original  # mutating the copy never leaks back

    @given(st.text(min_size=1, max_size=12), st.text(min_size=1, max_size=12),
           st.integers(0, 1000))
    @settings(max_examples=100)
    def test_remote_refs_survive_inside_composites(self, ep, obj, uid):
        ref = RemoteRef(ep, obj, uid)
        wrapped = {"refs": [ref, ref], "meta": (ref,)}
        result = roundtrip(wrapped)
        assert result["refs"][0] == ref
        assert result["meta"][0] == ref

    @given(values, values)
    @settings(max_examples=100)
    def test_args_kwargs_envelope(self, a, b):
        """The exact envelope the transport ships: (args, kwargs)."""
        args, kwargs = roundtrip(((a, b), {"x": a}))
        assert args == (a, b)
        assert kwargs == {"x": a}
