"""Property-based tests for load balancing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancer import FirstFitRebalancer, FractionalRedirect
from repro.rmi.remote import RemoteRef
from repro.rmi.transport import Request

pending_maps = st.dictionaries(
    st.integers(1, 50), st.integers(0, 1000), min_size=1, max_size=12
)


def refs_for(pending):
    return {uid: RemoteRef(f"ep-{uid}", f"obj-{uid}", uid) for uid in pending}


class TestRebalancerProperties:
    @given(pending_maps, st.floats(0.05, 1.0))
    @settings(max_examples=100)
    def test_plan_is_total_and_targets_are_members(self, pending, tolerance):
        decision = FirstFitRebalancer(tolerance).plan(pending, refs_for(pending))
        assert set(decision.plan) == set(pending)
        for uid, directive in decision.plan.items():
            if directive is None:
                continue
            assert 0.0 <= directive.fraction <= 1.0
            for target in directive.targets:
                assert target.uid in pending
                assert target.uid != uid  # never redirect to yourself

    @given(pending_maps)
    @settings(max_examples=100)
    def test_only_overloaded_members_redirect(self, pending):
        decision = FirstFitRebalancer(0.25).plan(pending, refs_for(pending))
        mean = sum(pending.values()) / len(pending)
        for uid, directive in decision.plan.items():
            if directive is not None:
                assert pending[uid] > mean

    @given(pending_maps)
    @settings(max_examples=100)
    def test_uniform_load_never_redirects(self, pending):
        level = max(pending.values(), default=0)
        uniform = {uid: level for uid in pending}
        decision = FirstFitRebalancer(0.25).plan(uniform, refs_for(uniform))
        assert all(d is None for d in decision.plan.values())

    @given(pending_maps)
    @settings(max_examples=50)
    def test_plan_is_deterministic(self, pending):
        refs = refs_for(pending)
        a = FirstFitRebalancer(0.25).plan(pending, refs)
        b = FirstFitRebalancer(0.25).plan(pending, refs)
        assert a.overloaded == b.overloaded
        assert {
            uid: (d.fraction if d else None) for uid, d in a.plan.items()
        } == {
            uid: (d.fraction if d else None) for uid, d in b.plan.items()
        }


class TestFractionalRedirectProperties:
    @given(st.floats(0.0, 1.0), st.integers(1, 2000))
    @settings(max_examples=100)
    def test_realized_fraction_tracks_requested(self, fraction, calls):
        """Counter-based selection keeps the realized redirect ratio
        within one call of the requested fraction at every prefix."""
        target = RemoteRef("ep", "obj")
        redirect = FractionalRedirect(fraction, [target])
        redirected = 0
        for i in range(1, calls + 1):
            if redirect(Request("obj", "m", b"")) is not None:
                redirected += 1
            assert abs(redirected - fraction * i) <= 1.0

    @given(st.integers(1, 8), st.integers(1, 200))
    @settings(max_examples=50)
    def test_targets_cycled_fairly(self, n_targets, calls):
        targets = [RemoteRef(f"ep-{i}", f"o-{i}", i) for i in range(n_targets)]
        redirect = FractionalRedirect(1.0, targets)
        counts = {t.uid: 0 for t in targets}
        for _ in range(calls):
            chosen = redirect(Request("o", "m", b""))
            counts[chosen.uid] += 1
        assert max(counts.values()) - min(counts.values()) <= 1
