"""Property-based tests for the key-value store and hash ring."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kvstore.ring import HashRing
from repro.kvstore.store import HyperStore

keys = st.text(string.ascii_lowercase + string.digits + "/$", min_size=1, max_size=24)
values = st.one_of(
    st.integers(), st.text(max_size=16), st.booleans(), st.none(),
    st.lists(st.integers(), max_size=5),
)


class TestStoreProperties:
    @given(st.dictionaries(keys, values, max_size=40), st.integers(1, 5))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_store_behaves_like_a_dict(self, mapping, nodes):
        """Whatever the partitioning, a put/get sequence must observe
        plain dict semantics."""
        store = HyperStore(nodes=nodes)
        for k, v in mapping.items():
            store.put(k, v)
        for k, v in mapping.items():
            assert store.get(k) == v
        assert sorted(store.keys()) == sorted(mapping)

    @given(st.dictionaries(keys, values, min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_add_node_never_loses_or_mutates_data(self, mapping):
        store = HyperStore(nodes=1)
        for k, v in mapping.items():
            store.put(k, v)
        store.add_node()
        store.add_node()
        for k, v in mapping.items():
            assert store.get(k) == v

    @given(st.lists(st.tuples(keys, values), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_last_write_wins(self, writes):
        store = HyperStore(nodes=3)
        expected = {}
        for k, v in writes:
            store.put(k, v)
            expected[k] = v
        for k, v in expected.items():
            assert store.get(k) == v

    @given(keys, st.lists(st.integers(-5, 5), max_size=20))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_incr_sums_deltas(self, key, deltas):
        store = HyperStore(nodes=2)
        total = 0
        for d in deltas:
            total += d
            assert store.incr(key, d) == total

    @given(st.dictionaries(keys, values, max_size=20))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_versions_monotonic_per_key(self, mapping):
        store = HyperStore(nodes=2)
        for k, v in mapping.items():
            v1 = store.put(k, v)
            v2 = store.put(k, v)
            assert v2 == v1 + 1


class TestRingProperties:
    node_names = st.lists(
        st.text(string.ascii_lowercase, min_size=1, max_size=8),
        min_size=1, max_size=8, unique=True,
    )

    @given(node_names, st.lists(keys, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_owner_is_always_a_member(self, nodes, key_list):
        ring = HashRing(vnodes=16)
        for n in nodes:
            ring.add_node(n)
        for k in key_list:
            assert ring.owner(k) in set(nodes)

    @given(node_names, st.lists(keys, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_adding_a_node_only_moves_keys_to_it(self, nodes, key_list):
        """Consistent hashing's defining property."""
        ring = HashRing(vnodes=16)
        for n in nodes:
            ring.add_node(n)
        before = {k: ring.owner(k) for k in key_list}
        newcomer = "zz-new-node"
        ring.add_node(newcomer)
        for k in key_list:
            now = ring.owner(k)
            assert now == before[k] or now == newcomer

    @given(node_names)
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_add_then_remove_is_identity(self, nodes):
        ring = HashRing(vnodes=16)
        for n in nodes:
            ring.add_node(n)
        probe_keys = [f"key-{i}" for i in range(64)]
        before = [ring.owner(k) for k in probe_keys]
        ring.add_node("transient")
        ring.remove_node("transient")
        assert [ring.owner(k) for k in probe_keys] == before
