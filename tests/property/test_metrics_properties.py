"""Property-based tests for the agility metric and workload patterns."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.agility import AgilitySample, AgilityTracker
from repro.workloads.patterns import AbruptPattern, CyclicPattern

capacities = st.floats(0.0, 1000.0, allow_nan=False)


class TestAgilityProperties:
    @given(capacities, capacities)
    @settings(max_examples=200)
    def test_excess_and_shortage_are_exclusive(self, cap, req):
        sample = AgilitySample(at=0.0, cap_prov=cap, req_min=req)
        assert sample.excess == 0.0 or sample.shortage == 0.0
        assert sample.agility == abs(cap - req)

    @given(st.lists(st.tuples(capacities, capacities), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_average_equals_mean_absolute_gap(self, observations):
        tracker = AgilityTracker()
        for i, (cap, req) in enumerate(observations):
            tracker.record(float(i), cap, req)
        expected = sum(abs(c - r) for c, r in observations) / len(observations)
        assert math.isclose(tracker.average_agility(), expected, rel_tol=1e-9)

    @given(st.lists(st.tuples(capacities, capacities), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_average_bounded_by_max(self, observations):
        tracker = AgilityTracker()
        for i, (cap, req) in enumerate(observations):
            tracker.record(float(i), cap, req)
        assert tracker.average_agility() <= tracker.max_agility() + 1e-9

    @given(
        st.lists(st.tuples(capacities, capacities), min_size=1, max_size=30),
        st.floats(0.1, 5.0),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=50)
    def test_weighting_scales_components_linearly(self, observations, we, ws):
        plain = AgilityTracker()
        weighted = AgilityTracker(excess_weight=we, shortage_weight=ws)
        for i, (cap, req) in enumerate(observations):
            plain.record(float(i), cap, req)
            weighted.record(float(i), cap, req)
        expected = (
            we * plain.average_excess() + ws * plain.average_shortage()
        )
        assert math.isclose(weighted.average_agility(), expected, rel_tol=1e-9)


class TestPatternProperties:
    @given(st.floats(1.0, 1e6), st.floats(0.0, 451.0 * 60))
    @settings(max_examples=200)
    def test_abrupt_rate_within_bounds(self, magnitude, t):
        pattern = AbruptPattern(magnitude)
        rate = pattern.rate(t)
        assert 0.0 <= rate <= magnitude * (1 + 1e-9)

    @given(st.floats(1.0, 1e6), st.floats(0.05, 0.9), st.floats(0.0, 501.0 * 60))
    @settings(max_examples=200)
    def test_cyclic_rate_within_band(self, magnitude, base, t):
        pattern = CyclicPattern(magnitude, base_fraction=base)
        rate = pattern.rate(t)
        assert magnitude * base * (1 - 1e-9) <= rate <= magnitude * (1 + 1e-9)

    @given(st.floats(1.0, 1e6), st.integers(2, 6))
    @settings(max_examples=50)
    def test_cyclic_period_symmetry(self, magnitude, cycles):
        """Rates one full cycle apart are identical (probes stay inside
        the trace, since the rate clamps beyond its duration)."""
        pattern = CyclicPattern(magnitude, cycles=cycles)
        period = pattern.duration_s / cycles
        for frac in (0.1, 0.33, 0.77):
            t = frac * period
            assert math.isclose(
                pattern.rate(t), pattern.rate(t + period), rel_tol=1e-9
            )

    @given(st.floats(1.0, 1e6))
    @settings(max_examples=50)
    def test_abrupt_scales_linearly_with_magnitude(self, magnitude):
        base = AbruptPattern(1.0)
        scaled = AbruptPattern(magnitude)
        for minute in (0, 60, 150, 205, 300, 450):
            assert math.isclose(
                scaled.rate(minute * 60.0),
                base.rate(minute * 60.0) * magnitude,
                rel_tol=1e-9,
            )
