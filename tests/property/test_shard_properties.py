"""Property-based tests for shard routing (satellite of PR 6).

The routing contract the sharded-pool layer leans on:

- every key routes to exactly one shard, deterministically, and two
  independently constructed routers for the same pool agree (the hash
  is process-independent, never the salted builtin);
- a key's route depends only on the static shard set — growing or
  shrinking *other* shards (membership churn, or even ring nodes other
  than the owner) never moves it;
- incremental ring removal is observationally identical to rebuilding
  the ring from the survivors, in any removal order;
- per-shard round-robin stays balanced after a member reap: survivors
  share the load exactly.
"""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.balancer import ElasticStub
from repro.rmi.remote import Remote, Skeleton
from repro.rmi.transport import DirectTransport
from repro.routing import HashRing, ShardRouter

pool_names = st.text(
    string.ascii_lowercase + string.digits + "-", min_size=1, max_size=12
)
keys = st.text(min_size=0, max_size=24)  # arbitrary unicode, empty ok
node_names = st.lists(
    st.text(min_size=1, max_size=8), min_size=2, max_size=8, unique=True
)


class TestRoutingTotality:
    @given(pool_names, st.integers(1, 8), st.lists(keys, max_size=30))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_every_key_routes_to_exactly_one_shard(
        self, pool, shards, key_list
    ):
        """Total and deterministic: any key yields one in-range index,
        the same one on every call and on a fresh router — client and
        server build their routers independently and must agree."""
        router = ShardRouter.for_pool(pool, shards)
        twin = ShardRouter.for_pool(pool, shards)
        for key in key_list:
            index = router.shard_for(key)
            assert 0 <= index < shards
            assert router.shard_for(key) == index
            assert twin.shard_for(key) == index
            assert router.shard_name_for(key) == f"{pool}/shard{index}"

    @given(pool_names, st.integers(1, 6), st.integers(1, 40))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_spread_visits_all_shards_evenly(self, pool, shards, rounds):
        router = ShardRouter.for_pool(pool, shards)
        picks = [router.spread() for _ in range(rounds * shards)]
        assert all(0 <= p < shards for p in picks)
        assert all(picks.count(i) == rounds for i in range(shards))


class TestRoutingStability:
    @given(node_names, st.lists(keys, min_size=1, max_size=30), st.data())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_route_survives_churn_of_non_owning_nodes(
        self, nodes, key_list, data
    ):
        """Removing and re-adding any node that is NOT a key's owner
        never changes that key's route — churn inside other shards is
        invisible to the key."""
        ring = HashRing(vnodes=16)
        for node in nodes:
            ring.add_node(node)
        owners = {key: ring.owner(key) for key in key_list}
        victim = data.draw(st.sampled_from(nodes))
        ring.remove_node(victim)
        for key, owner in owners.items():
            if owner != victim:
                assert ring.owner(key) == owner
        ring.add_node(victim)
        assert {key: ring.owner(key) for key in key_list} == owners

    @given(node_names, st.data())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_incremental_removal_equals_rebuild(self, nodes, data):
        """Any removal sequence leaves ring state identical to a ring
        built from scratch with the survivors."""
        order = data.draw(st.permutations(nodes))
        ring = HashRing(vnodes=16)
        for node in nodes:
            ring.add_node(node)
        survivors = list(nodes)
        for victim in order[:-1]:  # keep at least one node
            ring.remove_node(victim)
            survivors.remove(victim)
            rebuilt = HashRing(vnodes=16)
            for node in survivors:
                rebuilt.add_node(node)
            assert ring._ring == rebuilt._ring
            assert ring.nodes == rebuilt.nodes


class _Worker(Remote):
    def echo(self, value):
        return value


class TestRoundRobinAfterReap:
    @given(
        st.integers(3, 6),  # pool size
        st.data(),
        st.integers(1, 4),  # measured rounds
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_survivors_share_load_exactly_after_reap(
        self, size, data, rounds
    ):
        """Kill any one member of a shard's stub: once the per-member
        retry has discarded it, ``rounds`` full rotations land exactly
        ``rounds`` calls on every survivor."""
        transport = DirectTransport()
        skeletons = []
        members = []
        for i in range(size):
            endpoint = transport.add_endpoint(f"worker-{i}")
            skeleton = Skeleton(_Worker(), transport, endpoint.endpoint_id)
            skeletons.append(skeleton)
            members.append(skeleton.ref())

        class _Sentinel(Remote):
            def ermi_member_identities(self):
                return list(members)

        sep = transport.add_endpoint("sentinel")
        sentinel_ref = Skeleton(_Sentinel(), transport, sep.endpoint_id).ref()
        stub = ElasticStub(
            transport, lambda: sentinel_ref, epoch_source=lambda: 1
        )
        stub.echo("warm-up")
        victim = data.draw(st.integers(0, size - 1))
        transport.kill(members[victim].endpoint_id)
        # One full rotation of probes guarantees the dead member comes
        # up as primary and gets discarded (the retry's landing spot is
        # unspecified); then measure clean rotations over the survivors.
        for i in range(size):
            assert stub.echo(f"probe-{i}") == f"probe-{i}"
        assert members[victim] not in stub.members_snapshot()
        survivors = size - 1

        def calls(skeleton):
            stats = skeleton.stats.snapshot().get("echo")
            return stats.calls if stats else 0

        before = {
            i: calls(skeleton)
            for i, skeleton in enumerate(skeletons)
            if i != victim
        }
        for i in range(rounds * survivors):
            assert stub.echo(i) == i
        for i, count in before.items():
            assert calls(skeletons[i]) == count + rounds
