"""Property-based tests for open-loop arrival generation (ISSUE 9).

The contracts the scenario engine leans on:

- **per-seed determinism** — the same seed reproduces the exact arrival
  stream (counts and instants), for every pattern shape; this is what
  makes scenarios byte-replayable;
- **rate fidelity** — total arrivals over a window converge to the
  pattern's rate integral within statistical tolerance (Poisson noise),
  for constant, diurnal (cyclic), and flash-crowd patterns — including
  bursts strictly inside the window, the case the two-endpoint
  trapezoid used to miss;
- **consistency** — ``arrivals_between`` (windowed counts) and
  ``arrival_times`` (exact instants via thinning) draw from the same
  rate integral, so their totals agree within noise.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import ArrivalGenerator
from repro.workloads.patterns import (
    ConstantPattern,
    CyclicPattern,
    FlashCrowdPattern,
    integrate_rate,
)

seeds = st.integers(0, 2**31 - 1)

constant_patterns = st.builds(
    ConstantPattern,
    rate=st.floats(1.0, 200.0),
    duration_s=st.floats(30.0, 300.0),
)

diurnal_patterns = st.builds(
    CyclicPattern,
    point_b=st.floats(10.0, 200.0),
    cycles=st.integers(1, 3),
    duration_min=st.floats(2.0, 8.0),
    base_fraction=st.floats(0.1, 0.6),
)


@st.composite
def flash_patterns(draw):
    duration = draw(st.floats(100.0, 400.0))
    base = draw(st.floats(1.0, 20.0))
    spike = base * draw(st.floats(3.0, 20.0))
    ramp = draw(st.floats(1.0, 5.0))
    start = draw(st.floats(ramp, duration * 0.5))
    max_hold = duration - start - ramp
    hold = draw(st.floats(max_hold * 0.05, max_hold * 0.8))
    return FlashCrowdPattern(
        base_rate=base,
        spike_rate=spike,
        spike_start_s=start,
        spike_duration_s=hold,
        duration_s=duration,
        ramp_s=ramp,
    )


any_pattern = st.one_of(
    constant_patterns, diurnal_patterns, flash_patterns()
)


class TestDeterminism:
    @given(any_pattern, seeds)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_stream(self, pattern, seed):
        a = ArrivalGenerator(pattern, random.Random(seed))
        b = ArrivalGenerator(pattern, random.Random(seed))
        end = min(pattern.duration_s, 60.0)
        assert a.arrival_times(0.0, end) == b.arrival_times(0.0, end)

    @given(any_pattern, seeds)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_counts(self, pattern, seed):
        a = ArrivalGenerator(pattern, random.Random(seed))
        b = ArrivalGenerator(pattern, random.Random(seed))
        windows = [(i * 10.0, (i + 1) * 10.0) for i in range(6)]
        assert [a.arrivals_between(s, e) for s, e in windows] == [
            b.arrivals_between(s, e) for s, e in windows
        ]

    @given(any_pattern, seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_windowed_generation_is_stateless_across_seeds(
        self, pattern, seed_a, seed_b
    ):
        # Different seeds may differ, but each stream stays inside its
        # window and ordered — the invariants window-by-window
        # scheduling relies on.
        for seed in (seed_a, seed_b):
            gen = ArrivalGenerator(pattern, random.Random(seed))
            times = gen.arrival_times(10.0, 20.0)
            assert all(10.0 <= t < 20.0 for t in times)
            assert times == sorted(times)


def _expect_close_to_integral(pattern, seed, via_times: bool) -> None:
    end = pattern.duration_s
    lam = integrate_rate(pattern, 0.0, end)
    gen = ArrivalGenerator(pattern, random.Random(seed))
    if via_times:
        peak = gen.peak_rate(resolution_s=0.5)
        total = len(gen.arrival_times(0.0, end, peak=peak))
    else:
        total = sum(
            gen.arrivals_between(t, min(t + 10.0, end))
            for t in range(0, math.ceil(end), 10)
        )
    # Poisson sd is sqrt(lam); 6 sigma (plus slack for tiny lam) keeps
    # the flake rate negligible across the example budget.
    tolerance = 6.0 * math.sqrt(lam) + 10.0
    assert abs(total - lam) < tolerance


class TestRateFidelity:
    @given(constant_patterns, seeds)
    @settings(max_examples=20, deadline=None)
    def test_constant_counts_match_integral(self, pattern, seed):
        _expect_close_to_integral(pattern, seed, via_times=False)

    @given(diurnal_patterns, seeds)
    @settings(max_examples=20, deadline=None)
    def test_diurnal_counts_match_integral(self, pattern, seed):
        _expect_close_to_integral(pattern, seed, via_times=False)

    @given(flash_patterns(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_flash_crowd_counts_match_integral(self, pattern, seed):
        _expect_close_to_integral(pattern, seed, via_times=False)

    @given(flash_patterns(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_thinned_times_match_integral(self, pattern, seed):
        _expect_close_to_integral(pattern, seed, via_times=True)

    @given(flash_patterns(), seeds)
    @settings(max_examples=15, deadline=None)
    def test_spike_inside_one_window_is_counted(self, pattern, seed):
        # The regression property: one window spanning the whole trace
        # must see the spike's mass even though the rate at both
        # endpoints is the base rate.
        lam = integrate_rate(pattern, 0.0, pattern.duration_s)
        gen = ArrivalGenerator(pattern, random.Random(seed))
        total = gen.arrivals_between(0.0, pattern.duration_s)
        base_only = pattern.rate(0.0) * pattern.duration_s
        # The spike contributes lam - base_only; require we see at
        # least half of it (far above Poisson noise for these sizes).
        assert total - base_only > 0.5 * (lam - base_only) - 6.0 * math.sqrt(
            lam
        ) - 10.0
