"""Property-based safety test for the Paxos replica pool.

Paxos safety: once a value is chosen for a slot, no other value is ever
chosen for that slot, and every replica's applied state machine agrees.
We drive randomized schedules of proposals interleaved with leader
terminations and pool growth, and verify agreement after every step.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.paxos.replica import PaxosReplica
from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel

actions = st.lists(
    st.one_of(
        st.tuples(st.just("propose"), st.integers(0, 9)),
        st.tuples(st.just("kill-leader"), st.just(0)),
        st.tuples(st.just("grow"), st.just(0)),
    ),
    min_size=1,
    max_size=15,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(actions)
def test_chosen_log_is_consistent_across_any_schedule(schedule):
    kernel = Kernel()
    runtime = ElasticRuntime.simulated(
        kernel, nodes=6, provisioner=InstantProvisioner()
    )
    pool = runtime.new_pool(PaxosReplica, max_size=9)
    kernel.run_until(kernel.clock.now() + 1.0)
    stub = runtime.stub("PaxosReplica")
    proposed = []

    for action, arg in schedule:
        if action == "propose":
            result = stub.propose({"op": "put", "key": f"k{arg}", "value": arg})
            proposed.append((result["slot"], arg))
        elif action == "kill-leader" and pool.size() > 3:
            pool._terminate(pool.sentinel())
        elif action == "grow" and pool.size() < 9:
            pool.grow(1)
            kernel.run_until(kernel.clock.now() + 1.0)

        # Safety invariant after every step: all live replicas agree on
        # every slot they have both learned.
        logs = [m.instance.chosen_log() for m in pool.active_members()]
        for i, log_a in enumerate(logs):
            for log_b in logs[i + 1:]:
                for slot in set(log_a) & set(log_b):
                    assert log_a[slot] == log_b[slot]

    # Liveness/agreement at the end: the replicated state machine on the
    # current leader reflects the *last* accepted proposal per key (a
    # later leader may have joined via snapshot catch-up, so the raw log
    # can be compacted — state is the source of truth).
    leader = pool.sentinel().instance
    last_value_per_key = {}
    for slot, value in sorted(proposed):
        last_value_per_key[f"k{value}"] = value
    for key, value in last_value_per_key.items():
        assert leader.read(key) == value
    if proposed:
        assert leader.applied_upto() >= max(slot for slot, _ in proposed)
    # Slots are unique per proposal.
    slots = [slot for slot, _ in proposed]
    assert len(set(slots)) == len(slots)
