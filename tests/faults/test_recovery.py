"""Recovery machinery: reap, re-elect, re-provision, release leases."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.node import SliceState
from repro.kvstore.locks import LockManager
from repro.sim.clock import WallClock

from tests.faults.conftest import PingService, settle


@pytest.fixture
def pool(kernel, repairing_runtime):
    p = repairing_runtime.new_pool(PingService, name="svc")
    settle(kernel)
    assert p.size() == 2
    return p


class ReleaseCounter:
    """Counts master.release_slice calls per slice."""

    def __init__(self, master):
        self.calls = {}
        self._original = master.release_slice
        master.release_slice = self._wrapped

    def _wrapped(self, framework, sl):
        self.calls[id(sl)] = self.calls.get(id(sl), 0) + 1
        return self._original(framework, sl)

    def count(self, sl):
        return self.calls.get(id(sl), 0)


class TestReap:
    def test_lost_slice_reaped_without_master_callback(
        self, kernel, repairing_runtime, pool
    ):
        """A slice can be LOST without the master ever invoking the
        lost-slice callback (e.g. the notification itself was lost); the
        pool's own reap must still find it — and must NOT release the
        slice back to the master (it no longer exists there)."""
        counter = ReleaseCounter(repairing_runtime.master)
        victim = pool.active_members()[-1]
        victim.slice.state = SliceState.LOST
        reaped = pool.reap_failures()
        assert [m.uid for m in reaped] == [victim.uid]
        assert victim.state.value == "terminated"
        assert counter.count(victim.slice) == 0
        assert pool.failure_records[-1].kind == "slice-lost"
        assert pool.failure_records[-1].uid == victim.uid

    def test_dead_endpoint_reaped_and_slice_released(
        self, kernel, repairing_runtime, pool
    ):
        counter = ReleaseCounter(repairing_runtime.master)
        victim = pool.active_members()[-1]
        repairing_runtime.transport.kill(victim.endpoint_id)
        reaped = pool.reap_failures()
        assert [m.uid for m in reaped] == [victim.uid]
        assert counter.count(victim.slice) == 1  # JVM died, machine lives
        assert pool.failure_records[-1].kind == "endpoint-dead"

    def test_healthy_pool_reaps_nothing(self, pool):
        assert pool.reap_failures() == []
        assert pool.failure_records == []

    def test_reap_bumps_epoch_so_stubs_refresh(
        self, kernel, repairing_runtime, pool
    ):
        key = pool.membership_epoch_key()
        before = repairing_runtime.store.get(key, default=0)
        victim = pool.active_members()[-1]
        repairing_runtime.transport.kill(victim.endpoint_id)
        pool.reap_failures()
        assert repairing_runtime.store.get(key, default=0) > before


class TestRepairLoop:
    def test_pool_reprovisions_back_to_min(
        self, kernel, repairing_runtime, pool
    ):
        victim = pool.active_members()[-1]
        repairing_runtime.transport.kill(victim.endpoint_id)
        kernel.run_until(kernel.clock.now() + 2.0)
        assert pool.size() == pool.config.min_pool_size
        assert any(
            e.reason == "failure-recovery" for e in pool.scaling_events
        )

    def test_sentinel_reelected_after_sentinel_crash(
        self, kernel, repairing_runtime, pool
    ):
        old = pool.sentinel()
        survivors = [m.uid for m in pool.active_members() if m is not old]
        repairing_runtime.transport.kill(old.endpoint_id)
        kernel.run_until(kernel.clock.now() + 2.0)
        new = pool.sentinel()
        assert new.uid != old.uid
        assert new.uid == min(survivors + [new.uid])  # royal hierarchy
        # The registry bootstrap address follows the new sentinel.
        assert repairing_runtime.registry.lookup("svc").uid == new.uid

    def test_client_calls_survive_member_crash(
        self, kernel, repairing_runtime, pool
    ):
        stub = repairing_runtime.stub("svc")
        assert stub.ping(0) == 0
        victim = pool.active_members()[-1]
        repairing_runtime.transport.kill(victim.endpoint_id)
        # Before the repair loop even runs, retry masks the dead member.
        assert stub.ping(1) == 1
        kernel.run_until(kernel.clock.now() + 2.0)
        assert stub.ping(2) == 2
        assert pool.size() == pool.config.min_pool_size

    def test_master_outage_pauses_reprovision_but_not_reap(
        self, kernel, repairing_runtime, pool
    ):
        victim = pool.active_members()[-1]
        repairing_runtime.transport.kill(victim.endpoint_id)
        repairing_runtime.master.fail()
        kernel.run_until(kernel.clock.now() + 2.0)
        # Reaped (membership shrank) but could not re-provision.
        assert victim.state.value == "terminated"
        assert pool.size() < pool.config.min_pool_size
        repairing_runtime.master.recover()
        kernel.run_until(kernel.clock.now() + 2.0)
        assert pool.size() == pool.config.min_pool_size


class TestLeaseRelease:
    def test_reaping_a_member_releases_its_leases(
        self, kernel, repairing_runtime, pool
    ):
        victim = pool.active_members()[-1]
        owner = f"{pool.name}:member-{victim.uid}"
        locks = repairing_runtime.locks
        locks.lock("PingService", owner)
        assert locks.holder("PingService") == owner
        repairing_runtime.transport.kill(victim.endpoint_id)
        pool.reap_failures()
        assert locks.holder("PingService") is None

    def test_waiter_wakes_when_crashed_owner_is_reaped(
        self, kernel, repairing_runtime, pool
    ):
        """The wedge this PR removes: a waiter queued behind a crashed
        member's lease is released by the reap, not by luck."""
        victim = pool.active_members()[-1]
        owner = f"{pool.name}:member-{victim.uid}"
        locks = repairing_runtime.locks
        locks.lock("shared", owner)
        acquired = threading.Event()

        def waiter():
            locks.lock("shared", "survivor", timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        repairing_runtime.transport.kill(victim.endpoint_id)
        pool.reap_failures()
        assert acquired.wait(timeout=2.0)
        thread.join(timeout=2.0)


class TestLeaseExpiry:
    def test_waiter_wakes_on_ttl_expiry_without_unrelated_ops(self):
        """A waiter must observe lease expiry on its own: no other lock
        operation touches the name while it waits."""
        locks = LockManager(clock=WallClock())
        locks.lock("L", "crashed-member", ttl=0.1)
        started = time.monotonic()
        token = locks.lock("L", "waiter", timeout=5.0)
        elapsed = time.monotonic() - started
        assert token is not None
        assert elapsed < 2.0  # woke on expiry, not on the 5 s deadline

    def test_expired_lease_is_gone_for_try_lock(self):
        locks = LockManager(clock=WallClock())
        locks.lock("L", "a", ttl=0.01)
        time.sleep(0.02)
        assert locks.try_lock("L", "b") is not None

    def test_release_owner_returns_released_names(self):
        locks = LockManager(clock=WallClock())
        locks.lock("L1", "m")
        locks.lock("L2", "m")
        locks.lock("L3", "other")
        released = locks.release_owner("m")
        assert sorted(released) == ["L1", "L2"]
        assert locks.holder("L3") == "other"
