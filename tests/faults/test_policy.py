"""RetryPolicy/RetryState: bounds, backoff shape, jitter, and how the
exhausted budget surfaces through the elastic stub."""

from __future__ import annotations

import random

import pytest

from repro.core.balancer import ElasticStub
from repro.errors import ConnectError
from repro.faults.policy import RetryPolicy, RetryState
from repro.rmi.remote import Remote, Skeleton
from repro.rmi.transport import DirectTransport


class FakeClock:
    """A clock the test advances by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_rounds": 0},
            {"budget": 0.0},
            {"budget": -1.0},
            {"base_backoff": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_describe_names_every_bound(self):
        text = RetryPolicy(max_attempts=5, max_rounds=3, budget=7.0).describe()
        assert "5 attempts" in text
        assert "3 rounds" in text
        assert "7.0s budget" in text


class TestBackoffShape:
    def test_no_delay_before_first_round(self):
        assert RetryPolicy().backoff_for(1) == 0.0

    def test_capped_exponential_growth(self):
        policy = RetryPolicy(
            base_backoff=0.1, multiplier=2.0, max_backoff=0.5, max_rounds=8
        )
        delays = [policy.backoff_for(r) for r in range(2, 7)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # grows, then caps

    def test_jitter_is_deterministic_under_a_seeded_rng(self):
        policy = RetryPolicy(max_rounds=4, base_backoff=0.1, jitter=0.5)

        def total_backoff(seed):
            state = policy.start(rng=random.Random(seed))
            while state.next_round():
                pass
            return state.total_backoff

        assert total_backoff(7) == total_backoff(7)
        assert total_backoff(7) != total_backoff(8)

    def test_no_rng_means_nominal_delays(self):
        policy = RetryPolicy(max_rounds=3, base_backoff=0.1, multiplier=2.0)
        state = policy.start()
        assert state.next_round() and state.next_round()
        assert state.total_backoff == pytest.approx(0.1 + 0.2)

    def test_sleep_callable_receives_the_backoff(self):
        slept = []
        policy = RetryPolicy(max_rounds=2, base_backoff=0.25, jitter=0.0)
        state = policy.start(sleep=slept.append)
        assert state.next_round()
        assert slept == [0.25]


class TestBounds:
    def test_attempt_budget(self):
        state = RetryPolicy(max_attempts=3).start()
        for _ in range(3):
            assert state.allow_attempt()
            state.note_attempt()
        assert not state.allow_attempt()
        assert "attempt budget exhausted" in state.exhausted_reason()

    def test_round_budget(self):
        state = RetryPolicy(max_rounds=2, max_attempts=100).start()
        assert state.next_round()
        assert not state.next_round()

    def test_time_budget_against_a_clock(self):
        clock = FakeClock()
        state = RetryPolicy(budget=1.0).start(clock=clock)
        assert state.allow_attempt()
        clock.advance(2.0)
        assert state.over_budget()
        assert not state.allow_attempt()
        assert not state.next_round()  # an exhausted budget also ends rounds
        assert "time budget exhausted" in state.exhausted_reason()

    def test_no_clock_means_no_time_budget(self):
        state = RetryPolicy(budget=0.001).start()  # clock omitted
        assert not state.over_budget()
        assert state.allow_attempt()

    def test_exhausted_reason_names_the_policy(self):
        policy = RetryPolicy(max_attempts=1)
        state = policy.start()
        state.note_attempt()
        assert policy.describe() in state.exhausted_reason()

    def test_state_is_per_invocation(self):
        policy = RetryPolicy(max_attempts=1)
        first = policy.start()
        first.note_attempt()
        assert not first.allow_attempt()
        assert policy.start().allow_attempt()  # a fresh invocation


class _Worker(Remote):
    def echo(self, value):
        return value


class _FakeSentinel(Remote):
    def __init__(self, members):
        self.members = members

    def ermi_member_identities(self):
        return list(self.members)


@pytest.fixture
def dead_pool_rig():
    """Three workers and a sentinel; every worker endpoint is dead."""
    transport = DirectTransport()
    members = []
    for i in range(3):
        ep = transport.add_endpoint(f"worker-{i}")
        members.append(Skeleton(_Worker(), transport, ep.endpoint_id).ref())
    sentinel = _FakeSentinel(members)
    sep = transport.add_endpoint("sentinel")
    sentinel_ref = Skeleton(sentinel, transport, sep.endpoint_id).ref()
    for ref in members:
        transport.kill(ref.endpoint_id)
    return transport, sentinel_ref


class TestStubBudgetSurfacing:
    """Satellite: the stub's ConnectError names the exhausted budget."""

    def test_total_failure_names_the_exhausted_budget(self, dead_pool_rig):
        transport, sentinel_ref = dead_pool_rig
        policy = RetryPolicy(max_attempts=4, max_rounds=2, budget=None)
        stub = ElasticStub(transport, lambda: sentinel_ref, retry_policy=policy)
        with pytest.raises(ConnectError) as err:
            stub.echo("anyone there?")
        message = str(err.value)
        assert "all members of the elastic pool failed" in message
        assert policy.describe() in message

    def test_attempts_are_bounded(self, dead_pool_rig):
        transport, sentinel_ref = dead_pool_rig
        attempts = []
        original = transport.invoke

        def counting_invoke(endpoint_id, request):
            if request.method == "echo":
                attempts.append(endpoint_id)
            return original(endpoint_id, request)

        transport.invoke = counting_invoke
        stub = ElasticStub(
            transport,
            lambda: sentinel_ref,
            retry_policy=RetryPolicy(max_attempts=4, max_rounds=10),
        )
        with pytest.raises(ConnectError):
            stub.echo("x")
        assert len(attempts) <= 4

    def test_time_budget_ends_retry_with_an_advancing_clock(self, dead_pool_rig):
        transport, sentinel_ref = dead_pool_rig
        clock = FakeClock()
        stub = ElasticStub(
            transport,
            lambda: sentinel_ref,
            retry_policy=RetryPolicy(max_attempts=10_000, max_rounds=10_000,
                                     budget=1.0, jitter=0.0),
            clock=clock,
            sleep=clock.advance,  # backoff is what advances time here
        )
        with pytest.raises(ConnectError) as err:
            stub.echo("x")
        assert "time budget exhausted" in str(err.value)


class TestMaskedRetrySurfacing:
    """Satellite: a call whose *final* attempt succeeds must not make its
    earlier failed attempts vanish — the metrics registry records them."""

    @pytest.fixture
    def half_dead_rig(self):
        """Two workers; the one the rotation tries first is dead."""
        transport = DirectTransport()
        members = []
        for i in range(2):
            ep = transport.add_endpoint(f"worker-{i}")
            members.append(Skeleton(_Worker(), transport, ep.endpoint_id).ref())
        sentinel = _FakeSentinel(members)
        sep = transport.add_endpoint("sentinel")
        sentinel_ref = Skeleton(sentinel, transport, sep.endpoint_id).ref()
        transport.kill(members[0].endpoint_id)
        return transport, sentinel_ref

    def test_successful_call_still_records_its_attempts(self, half_dead_rig):
        from repro.obs import Observability
        from repro.sim.clock import SimClock

        transport, sentinel_ref = half_dead_rig
        obs = Observability(clock=SimClock())
        stub = ElasticStub(
            transport,
            lambda: sentinel_ref,
            retry_policy=RetryPolicy(max_attempts=4, max_rounds=2),
            obs=obs,
        )
        assert stub.echo("still here") == "still here"

        counters = obs.registry.snapshot()["counters"]
        assert counters["rmi.client.calls"] == 1
        assert counters["rmi.client.attempts"] == 2
        assert counters["rmi.client.retried_calls"] == 1
        assert counters["rmi.client.retries"] == 1
        assert counters.get("rmi.client.errors", 0) == 0

        retries = obs.tracer.events(kind="retry")
        assert len(retries) == 1
        assert retries[0].get("error") == "ConnectError"
        calls = obs.tracer.events(kind="call")
        assert len(calls) == 1
        assert calls[0].get("ok") is True
        assert calls[0].get("attempts") == 2

    def test_clean_call_records_no_retry(self):
        from repro.obs import Observability
        from repro.sim.clock import SimClock

        transport = DirectTransport()
        ep = transport.add_endpoint("worker-0")
        worker = Skeleton(_Worker(), transport, ep.endpoint_id).ref()
        sep = transport.add_endpoint("sentinel")
        sentinel_ref = Skeleton(
            _FakeSentinel([worker]), transport, sep.endpoint_id
        ).ref()
        obs = Observability(clock=SimClock())
        stub = ElasticStub(
            transport,
            lambda: sentinel_ref,
            retry_policy=RetryPolicy(max_attempts=4, max_rounds=2),
            obs=obs,
        )
        assert stub.echo("ok") == "ok"
        counters = obs.registry.snapshot()["counters"]
        assert counters["rmi.client.attempts"] == counters["rmi.client.calls"]
        assert counters.get("rmi.client.retried_calls", 0) == 0
        assert obs.tracer.events(kind="retry") == []


class TestRetryStateType:
    def test_start_returns_retry_state(self):
        assert isinstance(RetryPolicy().start(), RetryState)
