"""The scripted chaos scenario: acceptance criteria of the failure-path PR.

Crash 2 members and 1 kvstore node at t=5 s under client load; the run
must complete with zero client-visible errors, the pool back at its
minimum size, and an identical event trace across two runs with the
same seed."""

from __future__ import annotations

import pytest

from repro.faults.scenario import (
    POOL_MIN,
    SCHEMA,
    ChaosReport,
    run_chaos_scenario,
)

DURATION = 40.0


@pytest.fixture(scope="module")
def report() -> ChaosReport:
    return run_chaos_scenario(seed=5, duration=DURATION)


class TestAcceptance:
    def test_zero_client_visible_errors(self, report):
        assert report.client["calls"] > 100
        assert report.client["errors"] == 0
        assert report.client["wrong_results"] == 0

    def test_pool_returns_to_min(self, report):
        assert report.recovered
        assert report.pool["final_size"] >= POOL_MIN

    def test_both_faults_were_actually_injected(self, report):
        kinds = [kind for _, kind, _ in report.trace]
        assert "member-crash" in kinds
        assert "store-node-fail" in kinds
        assert len(report.failures) == 2  # both crashed members reaped

    def test_recovery_latency_is_bounded(self, report):
        # Detection (<= 0.5 s cadence) + provisioning (~1-1.5 s at low
        # load under the scenario's container model) — well under 10 s.
        assert report.recovery["recovery_latency"] is not None
        assert 0.0 < report.recovery["recovery_latency"] <= 10.0

    def test_report_is_ok_and_serializable(self, report):
        assert report.ok
        data = report.to_dict()
        assert data["schema"] == SCHEMA
        assert data["ok"] is True
        import json

        json.loads(report.to_json())  # round-trips


class TestDeterminism:
    def test_identical_trace_across_two_same_seed_runs(self, report):
        again = run_chaos_scenario(seed=5, duration=DURATION)
        assert again.trace == report.trace

    def test_identical_full_report_across_two_same_seed_runs(self, report):
        again = run_chaos_scenario(seed=5, duration=DURATION)
        assert again.to_dict() == report.to_dict()


class TestValidation:
    def test_duration_must_exceed_fault_time(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(seed=0, duration=3.0, fault_at=5.0)
