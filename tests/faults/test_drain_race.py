"""The drain-vs-failure race (satellite test coverage).

A member can die *while* it is DRAINING — either its endpoint crashes or
the node under its slice fails.  Either way the slice must be accounted
for exactly once: released back to the master exactly once when it still
exists, zero times when it was LOST, and the pending drain finalization
must become a no-op rather than a second release (SliceError) or a
wedged pool."""

from __future__ import annotations

import pytest

from repro.cluster.node import SliceState
from repro.core.pool import MemberState

from tests.faults.conftest import PingService, settle


@pytest.fixture
def pool(kernel, repairing_runtime):
    p = repairing_runtime.new_pool(PingService, name="svc")
    settle(kernel)
    p.grow(1)
    settle(kernel)
    assert p.size() == 3
    return p


class ReleaseCounter:
    def __init__(self, master):
        self.calls = {}
        self._original = master.release_slice
        master.release_slice = self._wrapped

    def _wrapped(self, framework, sl):
        self.calls[id(sl)] = self.calls.get(id(sl), 0) + 1
        return self._original(framework, sl)

    def count(self, sl):
        return self.calls.get(id(sl), 0)


def draining_member(pool):
    """Start a drain and return the victim while it is still DRAINING
    (the finalization event is queued but has not run)."""
    assert pool.shrink(1) == 1
    victims = [
        m for m in pool.members.values() if m.state is MemberState.DRAINING
    ]
    assert len(victims) == 1
    return victims[0]


class TestEndpointCrashMidDrain:
    def test_slice_released_exactly_once(
        self, kernel, repairing_runtime, pool
    ):
        counter = ReleaseCounter(repairing_runtime.master)
        victim = draining_member(pool)
        repairing_runtime.transport.kill(victim.endpoint_id)
        reaped = pool.reap_failures()
        assert [m.uid for m in reaped] == [victim.uid]
        assert pool.failure_records[-1].kind == "drain-crashed"
        assert counter.count(victim.slice) == 1
        # The queued drain finalization fires now — and must be a no-op.
        settle(kernel)
        assert counter.count(victim.slice) == 1
        assert victim.state is MemberState.TERMINATED

    def test_no_leak_slice_returns_to_the_free_pool(
        self, kernel, repairing_runtime, pool
    ):
        victim = draining_member(pool)
        repairing_runtime.transport.kill(victim.endpoint_id)
        pool.reap_failures()
        settle(kernel)
        assert victim.slice.state is SliceState.FREE
        fw = repairing_runtime.master.frameworks[
            repairing_runtime.framework_name
        ]
        assert victim.slice not in fw.slices


class TestNodeFailureMidDrain:
    def test_lost_slice_never_released(self, kernel, repairing_runtime, pool):
        counter = ReleaseCounter(repairing_runtime.master)
        victim = draining_member(pool)
        # The node under the draining member dies; the master's lost-slice
        # callback terminates the member with release_slice=False.
        repairing_runtime.master.fail_node(victim.slice.node.node_id)
        assert victim.state is MemberState.TERMINATED
        assert counter.count(victim.slice) == 0
        # Neither the queued finalization nor a later reap releases it.
        assert victim not in pool.reap_failures()
        settle(kernel)
        assert counter.count(victim.slice) == 0

    def test_lost_slice_without_callback_handled_by_reap(
        self, kernel, repairing_runtime, pool
    ):
        """Same race, but the master's notification never arrives: the
        reap finds the LOST slice itself."""
        counter = ReleaseCounter(repairing_runtime.master)
        victim = draining_member(pool)
        victim.slice.state = SliceState.LOST  # no callback fired
        reaped = pool.reap_failures()
        assert [m.uid for m in reaped] == [victim.uid]
        assert pool.failure_records[-1].kind == "drain-crashed"
        assert counter.count(victim.slice) == 0
        settle(kernel)
        assert counter.count(victim.slice) == 0
        assert victim.state is MemberState.TERMINATED

    def test_pool_does_not_wedge_below_min(
        self, kernel, repairing_runtime, pool
    ):
        """End to end: a crashed drain must not leave the pool stuck —
        the repair loop restores the minimum size."""
        victim = draining_member(pool)
        repairing_runtime.master.fail_node(victim.slice.node.node_id)
        kernel.run_until(kernel.clock.now() + 3.0)
        assert pool.size() >= pool.config.min_pool_size
        stub = repairing_runtime.stub("svc")
        assert stub.ping(1) == 1
