"""Fixtures for the chaos suite: simulated runtimes with and without the
dedicated failure-repair loop."""

from __future__ import annotations

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import ElasticObject
from repro.core.runtime import ElasticRuntime
from repro.kvstore.store import HyperStore
from repro.sim.kernel import Kernel


class PingService(ElasticObject):
    """Minimal elastic class for failure-path tests."""

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(6)

    def ping(self, value):
        return value


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    """Simulated runtime, legacy failure detection (per burst tick)."""
    return ElasticRuntime.simulated(
        kernel,
        nodes=8,
        slices_per_node=4,
        provisioner=InstantProvisioner(),
        store=HyperStore(nodes=3),
    )


@pytest.fixture
def repairing_runtime(kernel):
    """Simulated runtime with the dedicated repair loop armed (0.5 s)."""
    return ElasticRuntime.simulated(
        kernel,
        nodes=8,
        slices_per_node=4,
        provisioner=InstantProvisioner(),
        store=HyperStore(nodes=3),
        failure_check_interval=0.5,
    )


def settle(kernel, seconds=1.0):
    """Run the kernel briefly so zero-delay activations complete."""
    kernel.run_until(kernel.clock.now() + seconds)
