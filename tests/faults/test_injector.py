"""FaultInjector: message faults, scripted faults, and determinism."""

from __future__ import annotations

import random

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.errors import ConnectError
from repro.faults import FaultInjector, RetryPolicy
from repro.sim.kernel import Kernel

from tests.faults.conftest import PingService, settle


@pytest.fixture
def rig(kernel, runtime):
    pool = runtime.new_pool(PingService, name="svc")
    settle(kernel)
    injector = FaultInjector(runtime, rng=random.Random(11)).install()
    stub = runtime.stub("svc")
    return kernel, runtime, pool, injector, stub


class TestMessageFaults:
    def test_no_faults_messages_flow(self, rig):
        _, _, _, injector, stub = rig
        assert stub.ping(1) == 1
        assert injector.stats.dropped == 0

    def test_full_drop_rate_surfaces_injected_connect_error(self, rig):
        _, _, _, injector, stub = rig
        injector.set_drop_rate(1.0)
        with pytest.raises(ConnectError):
            stub.ping(2)
        assert injector.stats.dropped > 0

    def test_partial_drop_rate_is_masked_by_retry(self, rig):
        _, runtime, _, injector, _ = rig
        injector.set_drop_rate(0.3)
        stub = runtime.stub(
            "svc", caller="droptest",
            retry_policy=RetryPolicy(max_attempts=64, max_rounds=8),
        )
        results = [stub.ping(i) for i in range(50)]
        assert results == list(range(50))
        assert injector.stats.dropped > 0  # faults happened, all masked

    def test_drop_rate_can_target_one_endpoint(self, rig):
        _, _, pool, injector, stub = rig
        victim = pool.active_members()[-1]
        injector.set_drop_rate(1.0, endpoint_id=victim.endpoint_id)
        results = [stub.ping(i) for i in range(10)]
        assert results == list(range(10))  # other members cover

    def test_slow_endpoints_exhaust_the_attempt_budget(self, rig):
        kernel, runtime, pool, injector, _ = rig
        stub = runtime.stub(
            "svc", caller="slowtest",
            retry_policy=RetryPolicy(max_attempts=6, max_rounds=10),
        )
        stub.ping(0)  # warm the member cache before slowing the pool
        for member in pool.active_members():
            injector.slow_endpoint(member.endpoint_id)
        with pytest.raises(ConnectError) as err:
            stub.ping(1)
        assert "attempt budget exhausted" in str(err.value)
        assert injector.stats.timed_out >= 6

    def test_slow_member_stays_in_the_stub_cache(self, rig):
        """Slowness is transient; death is not.  A slow member costs
        budget but is not discarded."""
        _, _, pool, injector, stub = rig
        stub.ping(0)  # warm the member cache
        victim = pool.active_members()[-1]
        injector.slow_endpoint(victim.endpoint_id)
        for i in range(6):
            assert stub.ping(i) == i  # other member masks the slowness
        assert len(stub.members_snapshot()) == 2

    def test_delay_accounting(self, rig):
        _, _, _, injector, stub = rig
        injector.set_delay(0.05)
        stub.ping(1)
        assert injector.stats.delayed >= 1
        assert injector.stats.delay_total >= 0.05

    def test_clear_message_faults(self, rig):
        _, _, _, injector, stub = rig
        injector.set_drop_rate(1.0)
        injector.clear_message_faults()
        assert stub.ping(3) == 3

    def test_uninstall_detaches_the_hook(self, rig):
        _, _, _, injector, stub = rig
        injector.set_drop_rate(1.0)
        injector.uninstall()
        assert stub.ping(4) == 4


class TestScriptedFaults:
    def test_scheduled_fault_fires_at_the_scripted_instant(self, rig):
        kernel, _, pool, injector, _ = rig
        injector.schedule(5.0, lambda: injector.crash_members("svc", count=1))
        kernel.run_until(4.9)
        assert all(
            m.endpoint_id
            and injector.runtime.transport.endpoint(m.endpoint_id).alive
            for m in pool.active_members()
        )
        kernel.run_until(5.1)
        assert injector.trace[0].at == 5.0
        assert injector.trace[0].kind == "member-crash"

    def test_crash_members_spares_the_sentinel_by_default(self, rig):
        _, runtime, pool, injector, _ = rig
        sentinel_uid = pool.sentinel().uid
        uids = injector.crash_members("svc", count=1)
        assert sentinel_uid not in uids

    def test_cluster_node_fail_marks_slices_lost(self, rig):
        _, runtime, pool, injector, _ = rig
        member = pool.active_members()[-1]
        node_id = member.slice.node.node_id
        injector.fail_cluster_node(node_id)
        assert any("cluster-node-fail" == e.kind for e in injector.trace)

    def test_store_node_fail_avoids_owners_of_control_keys(self, rig):
        _, runtime, _, injector, _ = rig
        runtime.store.put("svc$epoch", 1)
        victim = injector.fail_store_node(avoid_keys=("svc$epoch",))
        assert victim != runtime.store.owner_node("svc$epoch")
        # The control key stays readable through the partition loss.
        assert runtime.store.get("svc$epoch") == 1

    def test_master_outage_recovers_after_duration(self, rig):
        kernel, runtime, _, injector, _ = rig
        injector.master_outage(2.0)
        assert not runtime.master.available
        kernel.run_until(kernel.clock.now() + 2.1)
        assert runtime.master.available
        kinds = [e.kind for e in injector.trace]
        assert kinds.count("master-fail") == 1
        assert kinds.count("master-recover") == 1


class TestDeterminism:
    def _run_once(self, seed):
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel, nodes=8, slices_per_node=4,
            provisioner=InstantProvisioner(),
        )
        runtime.new_pool(PingService, name="svc", max_size=6)
        settle(kernel)
        runtime.pool("svc").grow(3)
        settle(kernel)
        injector = FaultInjector(runtime, rng=random.Random(seed)).install()
        uids = injector.crash_members("svc", count=2)
        node = injector.fail_store_node()
        return uids, node, [e.as_tuple() for e in injector.trace]

    def test_same_seed_same_victims_same_trace(self):
        assert self._run_once(3) == self._run_once(3)

    def test_trace_uses_logical_identities_only(self):
        _, _, trace = self._run_once(3)
        for _, _, detail in trace:
            assert "ep-" not in detail  # process-global endpoint ids banned
