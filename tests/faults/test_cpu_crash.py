"""Worker-crash semantics for cpu-bound dispatch (satellite of the
multi-core execution PR).

The contract under test: a worker process dying mid-call is a
*transport-level* failure — the call fails with
:class:`~repro.errors.CpuWorkerLostError` (a ConnectError), the elastic
stub's retry machinery charges exactly one attempt for it and retries,
the pool respawns the worker, and the retried call succeeds there.  No
shared-memory segment may outlive the crash.

Implementation classes are module-level so the *spawned* workers can
import them by reference.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.core.balancer import ElasticStub
from repro.obs import Observability
from repro.rmi.cpu import CpuExecutor, cpu_bound, live_segments
from repro.rmi.remote import Remote, Skeleton
from repro.rmi.transport import ThreadedTransport


class _CrashyWork(Remote):
    """First execution parks forever (after signalling via the marker
    file); any later execution returns immediately.  Killing the worker
    while it is parked makes 'worker died mid-call' deterministic."""

    @cpu_bound
    def flaky(self, marker: str, blob: bytes) -> str:
        if os.path.exists(marker):
            return f"done:{len(blob)}"
        with open(marker, "w"):
            pass
        time.sleep(300)  # parked until the test kills this worker
        return "unreachable"


class _FixedSentinel(Remote):
    def __init__(self, members):
        self.members = members

    def ermi_member_identities(self):
        return list(self.members)


def _wait_for(predicate, timeout: float = 60.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestCpuWorkerCrash:
    def test_mid_call_death_charges_one_attempt_and_retries(self, tmp_path):
        marker = str(tmp_path / "first-attempt.marker")
        obs = Observability()
        transport = ThreadedTransport()
        # One worker, injected up front: the only pid is the busy one.
        executor = CpuExecutor(workers=1, obs=obs)
        transport.set_cpu_executor(executor)
        try:
            member = Skeleton(
                _CrashyWork(),
                transport,
                transport.add_endpoint("member-0").endpoint_id,
            ).ref()
            sentinel = Skeleton(
                _FixedSentinel([member]),
                transport,
                transport.add_endpoint("sentinel").endpoint_id,
            ).ref()
            stub = ElasticStub(transport, lambda: sentinel, obs=obs)

            # A payload above the crossover, so the request crosses via
            # shared memory and the crash path must clean the segment up.
            blob = os.urandom(512 * 1024)
            outcome: dict = {}

            def call():
                try:
                    outcome["result"] = stub.flaky(marker, blob)
                except Exception as exc:  # surfaced by the join below
                    outcome["error"] = exc

            caller = threading.Thread(target=call, daemon=True)
            caller.start()

            # The marker appears only once the worker is inside the
            # call; kill it there.
            assert _wait_for(lambda: os.path.exists(marker)), (
                "worker never reached the parked call"
            )
            (victim,) = executor.worker_pids()
            os.kill(victim, signal.SIGKILL)

            caller.join(timeout=120)
            assert not caller.is_alive(), "retried call never completed"
            assert outcome.get("result") == f"done:{len(blob)}", outcome

            # Exactly one logical call; the death charged one attempt
            # and the respawned worker served the second.
            registry = obs.registry
            assert registry.counter("rmi.client.calls").value == 1
            assert registry.counter("rmi.client.attempts").value == 2
            assert registry.counter("rmi.client.retried_calls").value == 1
            assert registry.counter("rmi.client.retries").value == 1

            # The pool recovered: one respawn, a different live pid.
            assert executor.respawns == 1
            assert registry.gauge("rmi.cpu.respawns").value == 1.0
            assert _wait_for(lambda: executor.worker_pids() != [])
            assert executor.worker_pids() != [victim]

            # No shared-memory segment survived the crash.
            assert live_segments() == []
        finally:
            transport.shutdown()
            executor.shutdown()
