"""Batching × elasticity edges (satellite test coverage).

The batcher sits *under* the elastic retry loop, so every elasticity
event that can interrupt a wire message must still resolve per logical
call: a drain must not strand queued entries, a ``drained`` reply inside
a batch must retry that entry elsewhere, a redirect inside a batch must
re-dispatch only that entry at its target, and a dropped batch message
must send every coalesced call back through its own retry budget.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector
from repro.rmi.batching import RequestBatcher
from repro.rmi.future import gather
from repro.rmi.remote import Remote, Skeleton, Stub
from repro.rmi.transport import DirectTransport

from tests.faults.conftest import PingService, settle


def batched_stub(runtime, caller="batch-client", max_batch=8):
    return runtime.stub(
        "svc",
        caller=caller,
        batcher=RequestBatcher(
            runtime.transport, max_batch=max_batch, linger=0.0, caller=caller
        ),
    )


@pytest.fixture
def pool(kernel, repairing_runtime):
    p = repairing_runtime.new_pool(PingService, name="svc")
    settle(kernel)
    p.grow(2)
    settle(kernel)
    assert p.size() == 4
    return p


class TestDrainMidBatch:
    def test_drain_flushes_queued_entries(self, kernel, repairing_runtime, pool):
        """Entries deferred in a client batcher when a drain begins are
        flushed by the drain protocol, not stranded behind it."""
        stub = batched_stub(repairing_runtime, max_batch=32)
        futures = [stub.invoke_async("ping", i) for i in range(6)]
        assert stub.batcher.pending_count() > 0
        assert pool.shrink(1) == 1
        settle(kernel)
        # The drain hook flushed the queue; nothing pending, all good.
        assert stub.batcher.pending_count() == 0
        assert [f.result(timeout=0) for f in futures] == list(range(6))

    def test_drained_reply_retries_that_entry_elsewhere(
        self, kernel, repairing_runtime, pool
    ):
        """A member that starts draining mid-batch answers ``drained``
        for its entries; each retries elsewhere within its own budget."""
        stub = batched_stub(repairing_runtime, max_batch=32)
        # Put every member's skeleton into drain *after* targets were
        # chosen: queue the window first, then start the drain on one.
        futures = [stub.invoke_async("ping", i) for i in range(8)]
        victim = pool.active_members()[0]
        victim.skeleton.start_drain()
        assert gather(futures) == list(range(8))
        # The victim is still DRAINING from the skeleton's perspective
        # only; the pool never saw a shrink, so membership is intact.
        assert pool.size() == 4

    def test_every_member_draining_exhausts_cleanly(
        self, kernel, repairing_runtime, pool
    ):
        """When every target keeps answering ``drained`` the logical
        calls fail with their own retry budgets — not a hang."""
        from repro.errors import ConnectError

        stub = batched_stub(repairing_runtime, max_batch=32)
        futures = [stub.invoke_async("ping", i) for i in range(4)]
        for member in pool.active_members():
            member.skeleton.start_drain()
        for future in futures:
            with pytest.raises(ConnectError):
                future.result(timeout=0)


class TestRedirectMidBatch:
    def test_redirected_entry_re_dispatches_at_target(self):
        """A ``redirect`` reply inside a batch re-dispatches only that
        entry at the redirect target (plain RMI layer, no pool)."""

        class Worker(Remote):
            def __init__(self, tag):
                self.tag = tag
                self.calls = 0

            def work(self, value):
                self.calls += 1
                return (self.tag, value)

        transport = DirectTransport()
        ep_a = transport.add_endpoint("a")
        ep_b = transport.add_endpoint("b")
        skel_a = Skeleton(Worker("a"), transport, ep_a.endpoint_id)
        skel_b = Skeleton(Worker("b"), transport, ep_b.endpoint_id)
        # Endpoint A bounces every call to B (server-side balancing).
        skel_a.redirect_policy = lambda request: skel_b.ref()
        batcher = RequestBatcher(transport, max_batch=8, linger=0.0)
        stub = Stub(transport, skel_a.ref(), batcher=batcher)
        futures = [stub.invoke_async("work", i) for i in range(3)]
        assert gather(futures) == [("b", 0), ("b", 1), ("b", 2)]
        assert skel_a.impl.calls == 0
        assert skel_b.impl.calls == 3
        # The original batch plus the per-entry re-dispatches all went
        # through the batcher (re-dispatches coalesce again).
        assert batcher.stats.entries == 6


class TestDroppedBatchMessage:
    def test_each_logical_call_retries_independently(
        self, kernel, repairing_runtime, pool
    ):
        """An injected drop of the batch wire message fails every
        coalesced call with the same ConnectError; each then re-enters
        its own retry loop and succeeds at another member."""
        injector = FaultInjector(repairing_runtime).install()
        try:
            stub = batched_stub(repairing_runtime, max_batch=32)
            # Prime the member cache, then drop messages to a
            # non-sentinel member (dropping the sentinel would starve
            # membership refresh, a different failure mode).
            assert stub.ping(0) == 0
            victim = pool.active_members()[-1]
            injector.set_drop_rate(1.0, endpoint_id=victim.endpoint_id)
            # Enough entries that round-robin puts several in the
            # victim's batch; all must still resolve correctly.
            futures = [stub.invoke_async("ping", i) for i in range(12)]
            assert gather(futures) == list(range(12))
            # One coalesced wire message to the victim was dropped (it
            # counts once however many logical calls rode it).
            assert injector.stats.dropped >= 1
        finally:
            injector.uninstall()

    def test_drop_consumes_exactly_one_attempt_per_call(
        self, kernel, repairing_runtime, pool
    ):
        """The batched send is each call's *first* attempt: after one
        dropped batch the fallback succeeds, so attempts per logical
        call is exactly 2 — budget spent once, not per batch."""
        from repro.obs import Observability

        obs = Observability(clock=kernel.clock)
        injector = FaultInjector(repairing_runtime).install()
        try:
            stub = repairing_runtime.stub(
                "svc",
                caller="batch-client",
                batcher=RequestBatcher(
                    repairing_runtime.transport,
                    max_batch=32,
                    linger=0.0,
                    caller="batch-client",
                ),
            )
            assert stub.ping(0) == 0
            stub._obs = obs
            victim = pool.active_members()[-1]
            injector.set_drop_rate(1.0, endpoint_id=victim.endpoint_id)
            futures = [stub.invoke_async("ping", i) for i in range(8)]
            assert gather(futures) == list(range(8))
            calls = [e for e in obs.tracer.events() if e.kind == "call"]
            assert len(calls) == 8
            assert all(e.get("ok") for e in calls)
            # Calls that hit the victim's dropped batch used exactly one
            # extra attempt; the rest used one.
            assert set(e.get("attempts") for e in calls) <= {1, 2}
            assert any(e.get("attempts") == 2 for e in calls)
        finally:
            injector.uninstall()
