"""Chaos suite: fault injection, retry policy, and recovery machinery."""
