"""Trace determinism on the asyncio transport.

The loop drains submissions FIFO; with sync handlers and no dispatch
deadline (``timeout=None``) the dispatch coroutines never suspend, so
the transport's trace is a pure function of the submission order.  Two
identical runs must serialize to byte-identical JSONL — the same
guarantee the seeded scenario gives on the simulated substrate, held
on the live event loop.
"""

from repro.obs import Tracer
from repro.obs.export import to_jsonl
from repro.rmi import (
    AsyncioTransport,
    RequestBatcher,
    Skeleton,
    Stub,
    gather,
)
from repro.rmi.remote import Remote
from repro.sim.clock import SimClock


class Upper(Remote):
    def shout(self, text):
        return text.upper()


def traced_run() -> str:
    """One scripted client session; returns the trace as JSONL."""
    transport = AsyncioTransport(timeout=None)
    tracer = Tracer(clock=SimClock())
    transport.set_tracer(tracer)
    try:
        endpoint = transport.add_endpoint("member-0")
        skeleton = Skeleton(Upper(), transport, endpoint.endpoint_id)

        # Unbatched: sync calls, then a pipelined async window.
        stub = Stub(transport, skeleton.ref())
        for i in range(3):
            assert stub.shout(f"s{i}") == f"S{i}"
        futures = [stub.invoke_async("shout", f"a{i}") for i in range(16)]
        assert gather(futures) == [f"A{i}" for i in range(16)]

        # Batched: exactly max_batch entries coalesce into one wire
        # message, dispatched by the loop drain discipline.
        batcher = RequestBatcher(transport, max_batch=8, linger=0.0)
        batched = Stub(transport, skeleton.ref(), batcher=batcher)
        futures = [batched.invoke_async("shout", f"b{i}") for i in range(8)]
        assert gather(futures) == [f"B{i}" for i in range(8)]

        return to_jsonl(tracer.events())
    finally:
        transport.shutdown()


class TestAioTraceDeterminism:
    def test_double_run_is_byte_identical(self):
        assert traced_run() == traced_run()

    def test_trace_shape(self):
        text = traced_run()
        lines = text.splitlines()
        # 3 sync + 16 async unbatched messages, 1 batch message.
        assert sum('"kind":"message"' in line for line in lines) == 19
        assert sum('"kind":"batch-message"' in line for line in lines) == 1
        assert '"size":8' in text

    def test_no_endpoint_ids_leak(self):
        """Traces name endpoints (``member-*``), never raw ``ep-*`` ids."""
        text = traced_run()
        assert "ep-" not in text
        assert "member-0" in text
