"""Tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_without_timestamp_keeps_no_series(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        assert gauge.value == 3.0
        assert gauge.series == []

    def test_set_with_timestamp_accumulates_series(self):
        gauge = Gauge("g")
        gauge.set(2, at=0.0)
        gauge.set(4, at=1.5)
        assert gauge.value == 4
        assert gauge.series == [(0.0, 2), (1.5, 4)]


class TestHistogramBucketEdges:
    def test_edges_are_upper_inclusive(self):
        """An observation equal to an edge lands in that edge's bucket."""
        hist = Histogram("h", edges=(1.0, 2.0, 4.0))
        hist.observe(1.0)   # == first edge -> bucket 0
        hist.observe(2.0)   # == second edge -> bucket 1
        hist.observe(4.0)   # == last edge -> bucket 2, NOT overflow
        assert hist.bucket_counts == [1, 1, 1, 0]
        assert hist.overflow == 0

    def test_values_between_edges(self):
        hist = Histogram("h", edges=(1.0, 2.0, 4.0))
        hist.observe(0.5)   # below first edge -> bucket 0
        hist.observe(1.5)   # (1, 2] -> bucket 1
        hist.observe(3.0)   # (2, 4] -> bucket 2
        assert hist.bucket_counts == [1, 1, 1, 0]

    def test_overflow_above_last_edge(self):
        hist = Histogram("h", edges=(1.0, 2.0))
        hist.observe(2.000001)
        hist.observe(100.0)
        assert hist.bucket_counts == [0, 0, 2]
        assert hist.overflow == 2

    def test_stats(self):
        hist = Histogram("h", edges=(1.0,))
        for value in (0.5, 2.0, 3.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.mean() == pytest.approx(2.0)
        assert hist.min == 0.5
        assert hist.max == 3.5

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))

    def test_rejects_empty_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=())


class TestMetricsRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert registry.counter("a").value == 1
        assert registry.names() == ["a"]

    def test_name_reuse_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("z.calls").inc(2)
        registry.counter("a.calls").inc()
        registry.gauge("pool.size").set(3, at=1.0)
        registry.histogram("lat", edges=(0.1, 1.0)).observe(0.05)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.calls", "z.calls"]
        assert snap["gauges"]["pool.size"]["series"] == [[1.0, 3]]
        assert snap["histograms"]["lat"]["buckets"] == [[0.1, 1], [1.0, 0]]
        json.dumps(snap)  # must serialize without a custom encoder
