"""Tests for the seeded traced scenario (``python -m repro trace``)."""

import pytest

from repro.obs.export import validate_summary
from repro.obs.scenario import run_traced_scenario

# One short run shared by the class: the scenario is deterministic, so
# caching it is safe and keeps the suite fast.  The fault lands after
# three scale-up bursts so the pool is large enough to lose three
# members and still serve.
DURATION = 45.0
FAULT_AT = 38.1


@pytest.fixture(scope="module")
def run():
    return run_traced_scenario(seed=3, duration=DURATION, fault_at=FAULT_AT)


class TestTracedScenario:
    def test_same_seed_is_byte_identical(self, run):
        again = run_traced_scenario(
            seed=3, duration=DURATION, fault_at=FAULT_AT
        )
        assert run.to_jsonl() == again.to_jsonl()
        assert run.summary_json() == again.summary_json()

    def test_different_seed_diverges(self, run):
        other = run_traced_scenario(
            seed=4, duration=DURATION, fault_at=FAULT_AT
        )
        assert run.to_jsonl() != other.to_jsonl()

    def test_no_client_visible_failures(self, run):
        assert run.client["errors"] == 0
        assert run.client["wrong_results"] == 0
        assert run.client["calls"] > 0

    def test_event_taxonomy_present(self, run):
        kinds = {event.kind for event in run.events}
        for expected in (
            "call", "invoke", "message",          # invocation path
            "pool-grow", "member-active", "pool-size",
            "member-reaped", "member-crash",      # failure path
            "sentinel-elected", "broadcast",
            "slice-offer", "slice-grant",
            "lock-acquire",
            "scale-decision", "agility-sample",
        ):
            assert expected in kinds, f"missing {expected} events"

    def test_crash_left_a_masked_retry_in_the_trace(self, run):
        """The fault is structurally client-visible: at least one call
        needed more than one attempt, and the trace says so."""
        assert any(event.kind == "retry" for event in run.events)
        retried = [
            event
            for event in run.events
            if event.kind == "call" and event.get("attempts", 1) > 1
        ]
        assert retried, "no call recorded its masked retry attempts"
        assert all(event.get("ok") for event in retried)

    def test_summary_validates_and_counts_match(self, run):
        summary = run.summary()
        assert validate_summary(summary) == []
        assert summary["events"] == len(run.events)
        # Trace-derived call count covers both clients: the sync ticker
        # and the batched burst client's logical calls.
        assert (
            summary["invocations"]["calls"]
            == run.client["calls"] + run.client["batched"]
        )
        assert summary["seed"] == 3
        assert summary["dropped"] == 0

    def test_summary_batching_section_is_populated(self, run):
        batching = run.summary()["batching"]
        assert batching["batches"] > 0
        # Coalescing actually happened: more logical entries than wire
        # messages (round-robin spreads each burst across members, so
        # the mean is per-endpoint, well below the window of 6).
        assert batching["entries"] > batching["batches"]
        assert batching["mean_batch_size"] > 1.0
        assert batching["inflight_hwm"] >= 1
        # Every batched logical call resolved: the burst client saw no
        # errors even across the crash window (masked by per-call
        # retry after the batch-level failure).
        assert run.client["batched"] > 0

    def test_batch_events_carry_logical_identities(self, run):
        batch_events = [e for e in run.events if e.kind == "batch"]
        assert batch_events
        for event in batch_events:
            assert event.get("caller") == "obs-batch"
            assert event.get("size") >= 1
            # Endpoint names are member names, never process-global ids.
            assert str(event.get("endpoint")).startswith("member-")

    def test_registry_client_counters_match_trace(self, run):
        counters = run.metrics["counters"]
        calls = [e for e in run.events if e.kind == "call"]
        attempts = sum(e.get("attempts", 1) for e in calls)
        assert counters["rmi.client.calls"] == len(calls)
        assert counters["rmi.client.attempts"] == attempts
        assert counters["rmi.client.retries"] == attempts - len(calls)

    def test_events_only_carry_logical_identities(self, run):
        """No process-global ids (``ep-N``) may leak into the trace —
        they would differ between two in-process runs."""
        text = run.to_jsonl()
        assert "ep-" not in text
