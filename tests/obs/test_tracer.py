"""Tests for the tracer: ring buffers, ordering, clocks, the off switch."""

import pytest

from repro.obs import RingBuffer, Tracer
from repro.sim.clock import SimClock


class TestRingBuffer:
    def test_holds_up_to_capacity(self):
        ring = RingBuffer(capacity=3)
        for i in range(3):
            ring.append(i)
        assert ring.snapshot() == [0, 1, 2]
        assert ring.dropped == 0

    def test_wraparound_overwrites_oldest(self):
        ring = RingBuffer(capacity=3)
        for i in range(5):
            ring.append(i)
        assert ring.snapshot() == [2, 3, 4]
        assert len(ring) == 3
        assert ring.appended == 5
        assert ring.dropped == 2

    def test_wraparound_exactly_at_capacity_boundary(self):
        """The first overwrite lands on the oldest slot, not slot 1."""
        ring = RingBuffer(capacity=2)
        ring.append("a")
        ring.append("b")
        ring.append("c")
        assert ring.snapshot() == ["b", "c"]
        assert ring.dropped == 1

    def test_multiple_full_cycles(self):
        ring = RingBuffer(capacity=4)
        for i in range(11):
            ring.append(i)
        assert ring.snapshot() == [7, 8, 9, 10]
        assert ring.dropped == 7

    def test_capacity_one(self):
        ring = RingBuffer(capacity=1)
        for i in range(3):
            ring.append(i)
        assert ring.snapshot() == [2]
        assert ring.dropped == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)


class TestTracer:
    def test_events_carry_sim_time(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        tracer.emit("a", "start")
        clock.advance(1.5)
        tracer.emit("a", "stop")
        times = [event.at for event in tracer.events()]
        assert times == [0.0, 1.5]

    def test_global_order_across_components(self):
        tracer = Tracer(clock=SimClock())
        tracer.emit("pool", "grow")
        tracer.emit("client", "call")
        tracer.emit("pool", "shrink")
        kinds = [event.kind for event in tracer.events()]
        assert kinds == ["grow", "call", "shrink"]

    def test_per_component_buffers_drop_independently(self):
        tracer = Tracer(clock=SimClock(), capacity=2)
        for i in range(5):
            tracer.emit("noisy", "tick", i=i)
        tracer.emit("quiet", "once")
        assert len(tracer.events("noisy")) == 2
        assert len(tracer.events("quiet")) == 1
        assert tracer.dropped() == 3
        # The quiet component's history survived the noisy one's wrap.
        assert tracer.events("quiet")[0].kind == "once"

    def test_fields_sorted_regardless_of_call_order(self):
        tracer = Tracer(clock=SimClock())
        a = tracer.emit("c", "k", zebra=1, apple=2)
        b = tracer.emit("c", "k", apple=2, zebra=1)
        assert a.fields == b.fields == (("apple", 2), ("zebra", 1))

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(clock=SimClock(), enabled=False)
        assert tracer.emit("c", "k") is None
        assert tracer.events() == []
        assert tracer.components() == []

    def test_filter_by_kind(self):
        tracer = Tracer(clock=SimClock())
        tracer.emit("c", "call")
        tracer.emit("c", "retry")
        tracer.emit("c", "call")
        assert len(tracer.events(kind="call")) == 2
        assert tracer.counts() == {"call": 2, "retry": 1}

    def test_clear_keeps_sequence_monotonic(self):
        tracer = Tracer(clock=SimClock())
        first = tracer.emit("c", "k")
        tracer.clear()
        second = tracer.emit("c", "k")
        assert second.seq > first.seq
        assert len(tracer.events()) == 1

    def test_event_as_dict_rounds_times(self):
        clock = SimClock()
        clock.advance(0.1 + 0.2)  # classic float residue
        tracer = Tracer(clock=clock)
        event = tracer.emit("c", "k")
        assert event.as_dict()["at"] == round(0.1 + 0.2, 9)
