"""Tests for JSONL export, the trace adapters, and the summary schema."""

import json

from repro.obs import Tracer
from repro.obs.export import (
    SCHEMA,
    agility_from_trace,
    provisioning_from_trace,
    qos_from_trace,
    read_jsonl,
    summarize_trace,
    to_jsonl,
    validate_summary,
)
from repro.sim.clock import SimClock


def make_trace():
    clock = SimClock()
    tracer = Tracer(clock=clock)
    tracer.emit("pool", "member-active", pool="p", uid=1, requested_at=0.0)
    clock.advance(1.0)
    tracer.emit("client", "call", method="ping", attempts=1, ok=True,
                latency=0.002, outcome="ok", rounds=1)
    clock.advance(2.0)
    tracer.emit("client", "call", method="ping", attempts=3, ok=True,
                latency=0.004, outcome="ok", rounds=2)
    tracer.emit("metrics", "agility-sample", cap_prov=4, req_min=2)
    clock.advance(3.0)
    tracer.emit("pool", "member-removed", pool="p", uid=2, drain_started=2.5)
    tracer.emit("pool", "pool-size", pool="p", size=3)
    return tracer.events()


class TestJsonl:
    def test_round_trip(self):
        events = make_trace()
        text = to_jsonl(events)
        parsed = read_jsonl(text)
        assert len(parsed) == len(events)
        assert parsed[0]["kind"] == "member-active"
        assert parsed[1]["fields"]["method"] == "ping"

    def test_lines_have_sorted_keys_and_compact_separators(self):
        text = to_jsonl(make_trace())
        line = text.splitlines()[0]
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )

    def test_empty_trace_is_empty_string(self):
        assert to_jsonl([]) == ""

    def test_adapters_accept_dicts_and_events_identically(self):
        events = make_trace()
        dicts = read_jsonl(to_jsonl(events))
        assert summarize_trace(events) == summarize_trace(dicts)


class TestAdapters:
    def test_agility_from_trace(self):
        tracker = agility_from_trace(make_trace())
        assert len(tracker.samples) == 1
        assert tracker.samples[0].cap_prov == 4
        assert tracker.samples[0].req_min == 2
        assert tracker.average_agility() == 2.0

    def test_provisioning_from_trace(self):
        series = provisioning_from_trace(make_trace())
        up = series.up_events()
        down = series.down_events()
        assert len(up) == 1 and len(down) == 1
        assert up[0].latency == 0.0        # requested and active at t=0
        assert down[0].requested_at == 2.5
        assert down[0].active_at == 3.0

    def test_qos_from_trace_counts_only_ok_calls(self):
        tracker = qos_from_trace(make_trace())
        assert tracker.operations == 2
        assert tracker.mean_latency() == (0.002 + 0.004) / 2


class TestSummary:
    def test_summary_schema_and_invocations(self):
        doc = summarize_trace(make_trace(), seed=7, dropped=0)
        assert validate_summary(doc) == []
        assert doc["schema"] == SCHEMA
        assert doc["seed"] == 7
        assert doc["invocations"]["calls"] == 2
        assert doc["invocations"]["retried_calls"] == 1
        assert doc["invocations"]["retry_attempts"] == 2
        assert doc["pool_sizes"] == [[3.0, 3]]

    def test_validate_flags_wrong_schema(self):
        doc = summarize_trace(make_trace())
        doc["schema"] = "other/v9"
        assert validate_summary(doc)
