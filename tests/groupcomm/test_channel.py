"""Tests for group membership, broadcast, and leader election."""

import pytest

from repro.groupcomm.channel import Channel, View, elect_leader


def _collector():
    messages = []
    return messages, lambda sender, msg: messages.append((sender, msg))


class TestMembership:
    def test_join_assigns_monotonic_uids(self):
        ch = Channel("g")
        _, sink = _collector()
        m1 = ch.join("a", sink)
        m2 = ch.join("b", sink)
        assert m2.uid > m1.uid

    def test_uids_never_reused(self):
        """Royal hierarchy correctness depends on uid monotonicity: a
        rejoining member must rank below everyone who stayed."""
        ch = Channel("g")
        _, sink = _collector()
        ch.join("a", sink)
        b = ch.join("b", sink)
        ch.leave("a")
        a2 = ch.join("a", sink)
        assert a2.uid > b.uid

    def test_duplicate_join_raises(self):
        ch = Channel("g")
        _, sink = _collector()
        ch.join("a", sink)
        with pytest.raises(ValueError):
            ch.join("a", sink)

    def test_leave_unknown_is_noop(self):
        Channel("g").leave("ghost")

    def test_view_ids_increase(self):
        ch = Channel("g")
        _, sink = _collector()
        ch.join("a", sink)
        v1 = ch.view().view_id
        ch.join("b", sink)
        assert ch.view().view_id > v1

    def test_view_callbacks_on_change(self):
        ch = Channel("g")
        views = []
        _, sink = _collector()
        ch.join("a", sink, on_view=views.append)
        ch.join("b", sink)
        ch.leave("b")
        assert [sorted(v.addresses()) for v in views] == [
            ["a"], ["a", "b"], ["a"],
        ]

    def test_view_members_sorted_by_uid(self):
        ch = Channel("g")
        _, sink = _collector()
        ch.join("z", sink)
        ch.join("a", sink)
        view = ch.view()
        assert [m.address for m in view.members] == ["z", "a"]


class TestBroadcast:
    def test_broadcast_reaches_all_members_including_sender(self):
        ch = Channel("g")
        got_a, sink_a = _collector()
        got_b, sink_b = _collector()
        ch.join("a", sink_a)
        ch.join("b", sink_b)
        count = ch.broadcast("a", {"x": 1})
        assert count == 2
        assert got_a == [("a", {"x": 1})]
        assert got_b == [("a", {"x": 1})]

    def test_broadcast_from_non_member_raises(self):
        ch = Channel("g")
        with pytest.raises(ValueError):
            ch.broadcast("ghost", "msg")

    def test_departed_member_gets_nothing(self):
        ch = Channel("g")
        got_a, sink_a = _collector()
        got_b, sink_b = _collector()
        ch.join("a", sink_a)
        ch.join("b", sink_b)
        ch.leave("b")
        ch.broadcast("a", "after")
        assert got_b == []

    def test_point_to_point_send(self):
        ch = Channel("g")
        got_a, sink_a = _collector()
        got_b, sink_b = _collector()
        ch.join("a", sink_a)
        ch.join("b", sink_b)
        ch.send("a", "b", "private")
        assert got_b == [("a", "private")]
        assert got_a == []

    def test_send_to_non_member_raises(self):
        ch = Channel("g")
        _, sink = _collector()
        ch.join("a", sink)
        with pytest.raises(ValueError):
            ch.send("a", "ghost", "msg")

    def test_broadcast_counter(self):
        ch = Channel("g")
        _, sink = _collector()
        ch.join("a", sink)
        ch.broadcast("a", 1)
        ch.broadcast("a", 2)
        assert ch.messages_broadcast == 2


class TestElection:
    def test_lowest_uid_wins(self):
        ch = Channel("g")
        _, sink = _collector()
        ch.join("first", sink)
        ch.join("second", sink)
        leader = ch.leader()
        assert leader.address == "first"

    def test_leader_reelected_on_departure(self):
        """Paper section 4.4: sentinel failure triggers the election,
        which picks the next-lowest uid."""
        ch = Channel("g")
        _, sink = _collector()
        ch.join("first", sink)
        ch.join("second", sink)
        ch.join("third", sink)
        ch.leave("first")
        assert ch.leader().address == "second"

    def test_empty_view_has_no_leader(self):
        assert elect_leader(View(0, ())) is None
        assert Channel("g").leader() is None
