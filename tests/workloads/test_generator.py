"""Tests for arrival generation."""

import random

import pytest

from repro.workloads.generator import ArrivalGenerator
from repro.workloads.patterns import (
    FlashCrowdPattern,
    PiecewiseLinearPattern,
    integrate_rate,
)


def flat_pattern(rate):
    return PiecewiseLinearPattern([(0, 1.0), (100, 1.0)], magnitude=rate)


@pytest.fixture
def gen():
    return ArrivalGenerator(flat_pattern(10.0), random.Random(1))


class TestArrivalsBetween:
    def test_mean_matches_rate(self, gen):
        total = sum(gen.arrivals_between(i * 10.0, (i + 1) * 10.0) for i in range(50))
        # 500 s at 10/s -> ~5000 arrivals; Poisson sd ~ 70.
        assert 4600 < total < 5400

    def test_empty_interval(self, gen):
        assert gen.arrivals_between(5.0, 5.0) == 0

    def test_reversed_interval_rejected(self, gen):
        with pytest.raises(ValueError):
            gen.arrivals_between(10.0, 5.0)

    def test_deterministic_for_seed(self):
        a = ArrivalGenerator(flat_pattern(10.0), random.Random(9))
        b = ArrivalGenerator(flat_pattern(10.0), random.Random(9))
        assert [a.arrivals_between(0, 10)] == [b.arrivals_between(0, 10)]

    def test_large_rate_uses_normal_approximation(self):
        gen = ArrivalGenerator(flat_pattern(100_000.0), random.Random(2))
        count = gen.arrivals_between(0.0, 1.0)
        assert 98_000 < count < 102_000

    def test_spike_inside_window_is_counted(self):
        # Regression: a two-endpoint trapezoid sampled at start and end
        # sees rate 1.0 at both and misses the 60 s spike at 500/s
        # entirely (~120 expected arrivals over the window).  The
        # sub-stepped integral must count it.
        spike = FlashCrowdPattern(
            base_rate=1.0,
            spike_rate=500.0,
            spike_start_s=120.0,
            spike_duration_s=60.0,
            duration_s=300.0,
            ramp_s=2.0,
        )
        gen = ArrivalGenerator(spike, random.Random(7))
        total = gen.arrivals_between(0.0, 300.0)
        lam = integrate_rate(spike, 0.0, 300.0)
        assert lam > 30_000  # the spike dominates the integral
        assert total > 0.8 * lam  # not the endpoint-only ~300

    def test_window_count_matches_subintervals(self):
        # One wide window and the same span cut into sub-windows must
        # agree in expectation (both integrate the same rate).
        spike = FlashCrowdPattern(
            base_rate=5.0,
            spike_rate=100.0,
            spike_start_s=40.0,
            spike_duration_s=20.0,
            duration_s=120.0,
            ramp_s=2.0,
        )
        wide = ArrivalGenerator(spike, random.Random(11))
        narrow = ArrivalGenerator(spike, random.Random(12))
        one = wide.arrivals_between(0.0, 120.0)
        many = sum(
            narrow.arrivals_between(i * 10.0, (i + 1) * 10.0)
            for i in range(12)
        )
        lam = integrate_rate(spike, 0.0, 120.0)
        sd = lam**0.5
        assert abs(one - lam) < 6 * sd
        assert abs(many - lam) < 6 * sd


class TestArrivalTimes:
    def test_times_within_interval_and_sorted(self, gen):
        times = gen.arrival_times(10.0, 20.0)
        assert all(10.0 <= t < 20.0 for t in times)
        assert times == sorted(times)

    def test_thinning_follows_ramp(self):
        ramp = PiecewiseLinearPattern([(0, 0.0), (100, 1.0)], magnitude=20.0)
        gen = ArrivalGenerator(ramp, random.Random(3))
        early = len(gen.arrival_times(0, 1000))
        late = len(gen.arrival_times(5000, 6000))
        assert late > early * 2

    def test_zero_rate_produces_nothing(self):
        silent = PiecewiseLinearPattern([(0, 0.0), (10, 0.0)], magnitude=1.0)
        gen = ArrivalGenerator(silent, random.Random(4))
        assert gen.arrival_times(0, 100) == []

    def test_peak_rate_scan(self):
        ramp = PiecewiseLinearPattern([(0, 0.1), (100, 0.9)], magnitude=100.0)
        gen = ArrivalGenerator(ramp, random.Random(5))
        assert gen.peak_rate() == pytest.approx(90.0)
