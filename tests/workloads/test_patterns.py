"""Tests for the Figure 7a/7b workload patterns."""

import pytest

from repro.workloads.patterns import (
    POINT_A,
    AbruptPattern,
    CyclicPattern,
    PiecewiseLinearPattern,
    abrupt_for,
    cyclic_for,
    point_b,
)


class TestMagnitudes:
    def test_paper_point_a_values(self):
        assert POINT_A["marketcetera"] == 50_000
        assert POINT_A["dcs"] == 75_000
        assert POINT_A["paxos"] == 24_000
        assert POINT_A["hedwig"] == 30_000

    def test_point_b_is_20_percent_above_a(self):
        for app in POINT_A:
            assert point_b(app) == pytest.approx(POINT_A[app] * 1.2)


class TestPiecewiseLinear:
    def test_interpolates_linearly(self):
        p = PiecewiseLinearPattern([(0, 0.0), (10, 1.0)], magnitude=100)
        assert p.rate(5 * 60) == pytest.approx(50.0)

    def test_clamps_before_and_after(self):
        p = PiecewiseLinearPattern([(0, 0.2), (10, 0.8)], magnitude=100)
        assert p.rate(-5) == pytest.approx(20.0)
        assert p.rate(1e9) == pytest.approx(80.0)

    def test_step_discontinuity(self):
        p = PiecewiseLinearPattern(
            [(0, 0.1), (5, 0.1), (5, 0.9), (10, 0.9)], magnitude=100
        )
        assert p.rate(4.9 * 60) == pytest.approx(10.0, abs=0.5)
        assert p.rate(5.1 * 60) == pytest.approx(90.0, abs=0.5)

    def test_unordered_points_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearPattern([(5, 0.1), (0, 0.2)], magnitude=1)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearPattern([(0, 0.5)], magnitude=1)

    def test_non_positive_magnitude_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearPattern([(0, 0.1), (1, 0.2)], magnitude=0)


class TestAbruptPattern:
    def test_duration_450_minutes(self):
        assert AbruptPattern(1000).duration_s == 450 * 60

    def test_peak_reaches_point_a(self):
        pattern = AbruptPattern(50_000)
        peak = max(pattern.rate(t * 60) for t in range(451))
        assert peak == pytest.approx(50_000)

    def test_contains_abrupt_increase(self):
        """Somewhere the rate must jump by more than half the magnitude
        within five minutes — the 'rapid increase' scenario."""
        pattern = AbruptPattern(1000)
        jumps = [
            pattern.rate((m + 5) * 60) - pattern.rate(m * 60)
            for m in range(0, 446)
        ]
        assert max(jumps) > 400

    def test_contains_abrupt_decrease(self):
        pattern = AbruptPattern(1000)
        jumps = [
            pattern.rate((m + 5) * 60) - pattern.rate(m * 60)
            for m in range(0, 446)
        ]
        assert min(jumps) < -400

    def test_contains_gradual_increase(self):
        """The first phase climbs slowly: positive trend, small steps."""
        pattern = AbruptPattern(1000)
        rates = [pattern.rate(m * 60) for m in range(0, 150, 10)]
        deltas = [b - a for a, b in zip(rates, rates[1:])]
        assert all(d >= 0 for d in deltas)
        assert all(d < 100 for d in deltas)

    def test_never_negative(self):
        pattern = AbruptPattern(1000)
        assert all(pattern.rate(t * 60) >= 0 for t in range(451))


class TestCyclicPattern:
    def test_duration_500_minutes(self):
        assert CyclicPattern(1000).duration_s == 500 * 60

    def test_peak_reaches_point_b(self):
        pattern = CyclicPattern(36_000)
        peak = max(pattern.rate(t * 30) for t in range(1001))
        assert peak == pytest.approx(36_000, rel=0.01)

    def test_three_cycles(self):
        """The workload returns to its base three times (paper: the
        pattern 'repeats three times')."""
        pattern = CyclicPattern(1000, cycles=3)
        base = pattern.rate(0)
        minima = 0
        step = 60.0
        rates = [pattern.rate(t * step) for t in range(int(pattern.duration_s / step) + 1)]
        for i in range(1, len(rates) - 1):
            if rates[i] <= rates[i - 1] and rates[i] <= rates[i + 1]:
                if rates[i] < base * 1.05:
                    minima += 1
        assert minima >= 2  # interior troughs between the 3 peaks

    def test_base_fraction_floor(self):
        pattern = CyclicPattern(1000, base_fraction=0.4)
        assert min(pattern.rate(t * 60) for t in range(501)) >= 399

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CyclicPattern(0)
        with pytest.raises(ValueError):
            CyclicPattern(100, base_fraction=1.5)
        with pytest.raises(ValueError):
            CyclicPattern(100, cycles=0)


class TestHelpers:
    def test_abrupt_for_uses_point_a(self):
        assert abrupt_for("paxos").magnitude == POINT_A["paxos"]

    def test_cyclic_for_uses_point_b(self):
        assert cyclic_for("hedwig").magnitude == pytest.approx(36_000)

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            abrupt_for("unknown-app")
