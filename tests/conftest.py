"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(42)
