"""Tests for the source-to-source transformation (Figure 6 rewrite)."""

import textwrap

import pytest

from repro.preprocessor.transform import transform_source


FIGURE6_INPUT = textwrap.dedent(
    '''
    class C1(ElasticObject):
        """The paper's Figure 6 class, pre-preprocessing."""

        x = 0
        z = 0

        def foo(self):
            if self.x == 5:
                self.z = 10

        # synchronized
        def bar(self):
            return "critical"
    '''
)


class TestFigure6Rewrite:
    def test_fields_become_elastic(self):
        out = transform_source(FIGURE6_INPUT)
        assert "x = elastic_field(default=0)" in out
        assert "z = elastic_field(default=0)" in out

    def test_synchronized_marker_becomes_decorator(self):
        out = transform_source(FIGURE6_INPUT)
        assert "@synchronized" in out
        assert "# synchronized" not in out

    def test_imports_inserted(self):
        out = transform_source(FIGURE6_INPUT)
        assert "from repro.core.fields import elastic_field, synchronized" in out

    def test_output_is_valid_python(self):
        compile(transform_source(FIGURE6_INPUT), "<transformed>", "exec")

    def test_transformed_class_actually_works(self):
        """The rewritten source must behave like a hand-written elastic
        class: fields shared via the store key C1$x."""
        out = transform_source(FIGURE6_INPUT)
        namespace = {}
        exec("from repro.core.api import ElasticObject\n" + out, namespace)
        C1 = namespace["C1"]
        from repro.core.fields import elastic_field, is_synchronized

        assert isinstance(vars(C1)["x"], elastic_field)
        assert vars(C1)["x"].store_key == "C1$x"
        assert is_synchronized(C1.bar)
        # Figure 6 behaviour end to end (detached mode).
        obj = C1()
        obj.x = 5
        obj.foo()
        assert obj.z == 10
        assert obj.bar() == "critical"

    def test_docstring_preserved(self):
        assert "pre-preprocessing" in transform_source(FIGURE6_INPUT)


class TestTransformScope:
    def test_non_elastic_classes_untouched(self):
        src = "class Plain:\n    x = 0\n"
        assert "elastic_field" not in transform_source(src)

    def test_constants_untouched(self):
        src = "class C(ElasticObject):\n    MAX_SIZE = 10\n    x = 0\n"
        out = transform_source(src)
        assert "MAX_SIZE = 10" in out
        assert "x = elastic_field(default=0)" in out

    def test_private_attributes_untouched(self):
        src = "class C(ElasticObject):\n    _internal = []\n    x = 1\n"
        out = transform_source(src)
        assert "_internal = []" in out

    def test_annotated_fields_transformed(self):
        src = "class C(ElasticObject):\n    count: int = 0\n"
        out = transform_source(src)
        assert "count = elastic_field(default=0)" in out

    def test_idempotent(self):
        """Transforming already-transformed source changes nothing more:
        no double-wrapped fields, and a fixed point after normalization."""
        once = transform_source(FIGURE6_INPUT)
        twice = transform_source(once)
        assert "elastic_field(default=elastic_field" not in twice
        assert twice.count("@synchronized") == once.count("@synchronized")
        assert transform_source(twice) == twice

    def test_marker_without_following_def_ignored(self):
        src = "class C(ElasticObject):\n    # synchronized\n    x = 0\n"
        out = transform_source(src)
        assert "@synchronized" not in out

    def test_module_level_assignments_untouched(self):
        src = "x = 0\nclass C(ElasticObject):\n    y = 1\n"
        out = transform_source(src)
        assert out.startswith("x = 0") or "\nx = 0" in out
        assert "x = elastic_field" not in out

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            transform_source("class C(ElasticObject:\n  pass")

    def test_throughput_scaled_service_also_recognized(self):
        src = "class S(ThroughputScaledService):\n    total = 0\n"
        out = transform_source(src)
        assert "total = elastic_field(default=0)" in out


class TestElasticInterfaceEnforcement:
    def test_skeleton_refuses_undeclared_methods(self):
        from repro.cluster.provisioner import InstantProvisioner
        from repro.core.api import ElasticObject
        from repro.core.runtime import ElasticRuntime
        from repro.errors import ApplicationError, NoSuchObjectError
        from repro.sim.kernel import Kernel

        class Narrow(ElasticObject):
            __elastic_interface__ = frozenset({"public_op"})

            def public_op(self):
                return "ok"

            def internal_op(self):
                return "secret"

        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel, nodes=4, provisioner=InstantProvisioner()
        )
        runtime.new_pool(Narrow)
        kernel.run_until(1.0)
        stub = runtime.stub("Narrow")
        assert stub.public_op() == "ok"
        with pytest.raises(ApplicationError) as info:
            stub.internal_op()
        assert isinstance(info.value.cause, NoSuchObjectError)
