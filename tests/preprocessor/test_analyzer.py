"""Tests for the static analyzer (the preprocessor's validation pass)."""

import pytest

from repro.core.api import ElasticObject
from repro.core.fields import elastic_field, synchronized
from repro.preprocessor.analyzer import AnalysisError, analyze


class GoodCache(ElasticObject):
    """A well-formed elastic class."""

    MAX_ENTRIES = 1000  # constant, fine
    hits = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(10)

    def put(self, key, value):
        return True

    def get(self, key):
        return None

    @synchronized
    def clear(self):
        pass


class TestSurfaceInventory:
    def test_remote_methods_listed(self):
        report = analyze(GoodCache)
        assert sorted(report.remote_methods) == ["clear", "get", "put"]

    def test_framework_methods_excluded(self):
        report = analyze(GoodCache)
        assert "set_min_pool_size" not in report.remote_methods
        assert "change_pool_size" not in report.remote_methods
        assert "get_method_call_stats" not in report.remote_methods

    def test_shared_fields_with_store_keys(self):
        report = analyze(GoodCache)
        assert report.shared_fields == {"hits": "GoodCache$hits"}

    def test_synchronized_methods_and_lock(self):
        report = analyze(GoodCache)
        assert report.synchronized_methods == ["clear"]
        assert report.lock_name == "GoodCache"

    def test_scaling_mechanism_reported(self):
        assert analyze(GoodCache).scaling_mechanism == "implicit"

        class Fine(GoodCache):
            def change_pool_size(self):
                return 0

        assert analyze(Fine).scaling_mechanism == "fine-grained"

    def test_clean_class_is_ok(self):
        report = analyze(GoodCache)
        assert report.ok()
        assert report.errors() == []


class TestFindings:
    def test_non_elastic_class_is_error(self):
        class Plain:
            pass

        report = analyze(Plain)
        assert not report.ok()
        assert report.errors()[0].code == "not-elastic"
        with pytest.raises(AnalysisError):
            analyze(Plain, strict=True)

    def test_mutable_class_state_warning(self):
        class Leaky(ElasticObject):
            cache = {}  # looks like state, silently per-member

            def get(self, k):
                return self.cache.get(k)

        report = analyze(Leaky)
        warnings = [f for f in report.warnings() if f.code == "mutable-class-state"]
        assert len(warnings) == 1
        assert "cache" in warnings[0].message

    def test_bad_configuration_is_error(self):
        class TooSmall(ElasticObject):
            def __init__(self):
                super().__init__()
                self.set_min_pool_size(1)  # paper requires >= 2

            def work(self):
                pass

        report = analyze(TooSmall)
        assert any(f.code == "bad-configuration" for f in report.errors())
        with pytest.raises(AnalysisError):
            analyze(TooSmall, strict=True)

    def test_broken_constructor_is_error(self):
        class Boom(ElasticObject):
            def __init__(self):
                super().__init__()
                raise RuntimeError("nope")

            def work(self):
                pass

        report = analyze(Boom)
        assert any(f.code == "constructor-raises" for f in report.errors())

    def test_constructor_with_args_is_info_only(self):
        class NeedsArgs(ElasticObject):
            def __init__(self, dep):
                super().__init__()
                self.dep = dep

            def work(self):
                pass

        report = analyze(NeedsArgs)
        assert report.ok()
        assert any(f.code == "constructor-args" for f in report.findings)

    def test_no_remote_methods_warning(self):
        class Mute(ElasticObject):
            pass

        report = analyze(Mute)
        assert any(f.code == "no-remote-methods" for f in report.warnings())

    def test_interface_declares_missing_method(self):
        class Partial(ElasticObject):
            __elastic_interface__ = frozenset({"exists", "missing"})

            def exists(self):
                pass

        report = analyze(Partial)
        assert any(
            f.code == "interface-method-missing" for f in report.errors()
        )

    def test_interface_restricts_surface(self):
        class Narrow(ElasticObject):
            __elastic_interface__ = frozenset({"public_op"})

            def public_op(self):
                pass

            def internal_op(self):
                pass

        report = analyze(Narrow)
        assert report.remote_methods == ["public_op"]


class TestSummary:
    def test_summary_is_readable(self):
        text = analyze(GoodCache).summary()
        assert "GoodCache" in text
        assert "put" in text
        assert "hits -> GoodCache$hits" in text
        assert "synchronized: clear" in text
