"""RMI callbacks: passing remote references as arguments.

A client exports its own object (a listener), passes the reference into
an elastic pool's method, and the pool member invokes back through it —
the classic RMI callback pattern, using pass-by-reference semantics for
remote refs (everything else passes by value).
"""

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import ElasticObject
from repro.core.runtime import ElasticRuntime
from repro.rmi.remote import Remote, Skeleton
from repro.sim.kernel import Kernel


class Listener(Remote):
    """Client-side callback target."""

    def __init__(self):
        self.notifications = []

    def notify(self, event):
        self.notifications.append(event)
        return "ack"


class Notifier(ElasticObject):
    """Pool member that calls back to registered listeners."""

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(4)

    def register_and_fire(self, listener_ref, event):
        """Immediately notify the given listener (callback demo)."""
        callback = self._ermi_ctx.stub_for(listener_ref)
        return callback.notify(event)

    def broadcast_to(self, listener_refs, event):
        acks = 0
        for ref in listener_refs:
            callback = self._ermi_ctx.stub_for(ref)
            if callback.notify(event) == "ack":
                acks += 1
        return acks


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    return ElasticRuntime.simulated(
        kernel, nodes=4, provisioner=InstantProvisioner()
    )


def export_listener(runtime, name):
    """Export a client-side object the way a client JVM would."""
    endpoint = runtime.transport.add_endpoint(name)
    listener = Listener()
    skeleton = Skeleton(listener, runtime.transport, endpoint.endpoint_id)
    return listener, skeleton.ref()


class TestCallbacks:
    def test_server_calls_back_to_client_object(self, runtime, kernel):
        runtime.new_pool(Notifier)
        kernel.run_until(1.0)
        listener, ref = export_listener(runtime, "client-jvm")
        stub = runtime.stub("Notifier")
        assert stub.register_and_fire(ref, {"kind": "fill"}) == "ack"
        assert listener.notifications == [{"kind": "fill"}]

    def test_ref_passes_by_reference_not_value(self, runtime, kernel):
        """The pool member reached the *same* client object, not a copy:
        repeated callbacks accumulate on one instance."""
        runtime.new_pool(Notifier)
        kernel.run_until(1.0)
        listener, ref = export_listener(runtime, "client-jvm")
        stub = runtime.stub("Notifier")
        for i in range(5):
            stub.register_and_fire(ref, i)
        assert listener.notifications == [0, 1, 2, 3, 4]

    def test_multiple_listeners(self, runtime, kernel):
        runtime.new_pool(Notifier)
        kernel.run_until(1.0)
        listeners, refs = [], []
        for i in range(3):
            listener, ref = export_listener(runtime, f"client-{i}")
            listeners.append(listener)
            refs.append(ref)
        stub = runtime.stub("Notifier")
        assert stub.broadcast_to(refs, "tick") == 3
        for listener in listeners:
            assert listener.notifications == ["tick"]

    def test_dead_listener_propagates_connect_error(self, runtime, kernel):
        from repro.errors import ApplicationError, ConnectError

        runtime.new_pool(Notifier)
        kernel.run_until(1.0)
        listener, ref = export_listener(runtime, "doomed-client")
        runtime.transport.kill(ref.endpoint_id)
        stub = runtime.stub("Notifier")
        with pytest.raises(ApplicationError) as info:
            stub.register_and_fire(ref, "x")
        assert isinstance(info.value.cause, ConnectError)
