"""Integration: the paper's fault-tolerance model (section 4.4).

ElasticRMI does not mask failures of clients, the key-value store, or
runtime processes — those propagate as exceptions.  It *does* recover
from sentinel failures (royal-hierarchy re-election) and pauses scaling
through Mesos outages.  These scenarios are exercised end to end here,
including a chaos-style schedule mixing all failure kinds.
"""

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import ElasticObject
from repro.core.fields import elastic_field
from repro.core.runtime import ElasticRuntime
from repro.errors import ConnectError, StoreUnavailableError
from repro.sim.kernel import Kernel


class Service(ElasticObject):
    counter = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(8)

    def ping(self):
        return "pong"

    def bump(self):
        return type(self).counter.update(self, lambda v: v + 1)


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    return ElasticRuntime.simulated(
        kernel, nodes=6, provisioner=InstantProvisioner()
    )


@pytest.fixture
def pool(runtime, kernel):
    p = runtime.new_pool(Service, max_size=8)
    kernel.run_until(kernel.clock.now() + 1.0)
    p.grow(2)
    kernel.run_until(kernel.clock.now() + 1.0)
    return p


def tick(kernel, n=1):
    kernel.run_until(kernel.clock.now() + n * 60.0 + 1.0)


class TestSentinelRecovery:
    def test_sentinel_crash_reelects_and_serves(self, runtime, kernel, pool):
        stub = runtime.stub("Service")
        stub.ping()
        first = pool.sentinel()
        runtime.transport.kill(first.endpoint_id)
        tick(kernel)  # detection + re-election + registry rebind
        second = pool.sentinel()
        assert second.uid > first.uid
        assert stub.ping() == "pong"
        # A *fresh* stub bootstraps from the new sentinel.
        fresh = runtime.stub("Service", caller="late-joiner")
        assert fresh.ping() == "pong"

    def test_cascading_sentinel_failures(self, runtime, kernel, pool):
        stub = runtime.stub("Service")
        stub.ping()
        for _ in range(2):
            runtime.transport.kill(pool.sentinel().endpoint_id)
            tick(kernel)
            assert stub.ping() == "pong"
        assert pool.size() >= 2  # scaled back up to the minimum

    def test_pool_replaces_dead_members_to_min(self, runtime, kernel):
        p = runtime.new_pool(Service, name="svc2")
        kernel.run_until(kernel.clock.now() + 1.0)
        victim = p.active_members()[1]
        runtime.transport.kill(victim.endpoint_id)
        tick(kernel, 2)
        assert p.size() >= p.config.min_pool_size


class TestStoreFailurePropagation:
    def test_store_outage_reaches_the_client(self, runtime, kernel, pool):
        """Key-value store failures propagate (they are not masked)."""
        stub = runtime.stub("Service")
        assert stub.bump() == 1
        runtime.store.fail_node("store-0")
        with pytest.raises(Exception) as info:
            stub.bump()
        cause = getattr(info.value, "cause", info.value)
        assert isinstance(cause, StoreUnavailableError)

    def test_store_recovery_restores_state(self, runtime, kernel, pool):
        stub = runtime.stub("Service")
        stub.bump()
        stub.bump()
        runtime.store.fail_node("store-0")
        runtime.store.recover_node("store-0")
        assert stub.bump() == 3  # state survived the outage


class TestClusterNodeFailure:
    def test_node_crash_terminates_members_and_pool_recovers(
        self, runtime, kernel, pool
    ):
        stub = runtime.stub("Service")
        stub.ping()
        victim_node = pool.active_members()[0].slice.node.node_id
        before = pool.size()
        runtime.master.fail_node(victim_node)
        lost = before - pool.size()
        assert lost >= 1
        assert stub.ping() == "pong"  # surviving members serve
        tick(kernel, 2)
        assert pool.size() >= pool.config.min_pool_size


class TestChaosSchedule:
    def test_mixed_failures_never_violate_invariants(self, runtime, kernel):
        """A scripted chaos run: kill members, fail the master, fail a
        cluster node, recover everything — the pool must keep its
        invariants (size within bounds, one sentinel, serving clients)."""
        pool = runtime.new_pool(Service, name="chaos", max_size=8)
        kernel.run_until(kernel.clock.now() + 1.0)
        pool.grow(3)
        kernel.run_until(kernel.clock.now() + 1.0)
        stub = runtime.stub("chaos")

        schedule = [
            lambda: runtime.transport.kill(pool.sentinel().endpoint_id),
            lambda: runtime.master.fail(),
            lambda: runtime.transport.kill(
                pool.active_members()[-1].endpoint_id
            ),
            lambda: runtime.master.recover(),
            lambda: runtime.master.fail_node(
                pool.active_members()[0].slice.node.node_id
            ),
            lambda: pool.grow(2),
        ]
        for step in schedule:
            try:
                step()
            except Exception:
                pass  # some steps legitimately fail mid-outage
            tick(kernel)
            active = pool.active_members()
            if active:
                # Exactly one sentinel: the lowest uid.
                assert pool.sentinel().uid == min(m.uid for m in active)
                assert pool.size() <= pool.config.max_pool_size
                assert stub.ping() == "pong"
        tick(kernel, 3)
        assert pool.size() >= pool.config.min_pool_size
        assert stub.ping() == "pong"
