"""Integration: multi-pool applications and application-level deciders.

Paper section 3.3: applications with tiers of elastic pools can make
scaling decisions at the level of the whole application via the Decider
class — the runtime polls the decider for each pool's desired size.
"""

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import Decider, ElasticObject
from repro.core.fields import elastic_field
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel


class Frontend(ElasticObject):
    """Tier 1: accepts requests, records demand in shared state."""

    demand = elastic_field(default=0.0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(10)

    def handle(self, load):
        type(self).demand.update(self, lambda v: v + load)
        return "ok"


class Backend(ElasticObject):
    """Tier 2: sized relative to the frontend by the decider."""

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(20)

    def work(self):
        return "done"


class TieredDecider(Decider):
    """Application-level logic: backend runs at 2x the frontend size.

    The paper leaves inter-pool communication to the developer; here the
    decider observes both pools directly through the runtime.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self.frontend_desired = 2

    def get_desired_pool_size(self, pool):
        if pool.name == "frontend":
            return self.frontend_desired
        if pool.name == "backend":
            return 2 * self.runtime.pool("frontend").size()
        return pool.size()


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    return ElasticRuntime.simulated(
        kernel, nodes=10, provisioner=InstantProvisioner()
    )


def run_bursts(kernel, n, burst=60.0):
    kernel.run_until(kernel.clock.now() + n * burst + 1.0)


class TestApplicationLevelScaling:
    def test_decider_coordinates_two_pools(self, runtime, kernel):
        decider = TieredDecider(runtime)
        frontend = runtime.new_pool(Frontend, name="frontend", decider=decider)
        backend = runtime.new_pool(Backend, name="backend", decider=decider)
        run_bursts(kernel, 1)
        assert frontend.size() == 2
        assert backend.size() == 4

        decider.frontend_desired = 5
        run_bursts(kernel, 2)
        assert frontend.size() == 5
        assert backend.size() == 10

    def test_decider_shrinks_tiers_together(self, runtime, kernel):
        decider = TieredDecider(runtime)
        frontend = runtime.new_pool(Frontend, name="frontend", decider=decider)
        backend = runtime.new_pool(Backend, name="backend", decider=decider)
        decider.frontend_desired = 5
        run_bursts(kernel, 3)
        assert (frontend.size(), backend.size()) == (5, 10)
        decider.frontend_desired = 2
        run_bursts(kernel, 4)
        assert frontend.size() == 2
        assert backend.size() == 4

    def test_pools_share_one_cluster(self, runtime, kernel):
        decider = TieredDecider(runtime)
        runtime.new_pool(Frontend, name="frontend", decider=decider)
        runtime.new_pool(Backend, name="backend", decider=decider)
        run_bursts(kernel, 1)
        # 2 frontend + 4 backend + 1 store slice.
        assert runtime.master.allocated_slices() == 7

    def test_decider_bounded_by_cluster_capacity(self, kernel):
        runtime = ElasticRuntime.simulated(
            kernel, nodes=2, slices_per_node=3,
            provisioner=InstantProvisioner(),
        )
        decider = TieredDecider(runtime)
        frontend = runtime.new_pool(Frontend, name="frontend", decider=decider)
        decider.frontend_desired = 50  # far beyond the 6-slice cluster
        run_bursts(kernel, 3)
        # Partial grants: the pool takes what exists (5 slices + 1 store)
        # and the application keeps running.
        assert frontend.size() == 5
        stub = runtime.stub("frontend")
        assert stub.handle(1.0) == "ok"


class TestCrossPoolInteraction:
    def test_frontend_state_visible_to_backend_pool(self, runtime, kernel):
        """Two pools share the runtime's store, so cross-tier signals
        (like the demand field) flow without extra plumbing."""
        decider = TieredDecider(runtime)
        runtime.new_pool(Frontend, name="frontend", decider=decider)
        runtime.new_pool(Backend, name="backend", decider=decider)
        run_bursts(kernel, 1)
        stub = runtime.stub("frontend")
        for _ in range(5):
            stub.handle(2.5)
        assert runtime.store.get("Frontend$demand") == pytest.approx(12.5)

    def test_stubs_for_both_pools_work_concurrently(self, runtime, kernel):
        decider = TieredDecider(runtime)
        runtime.new_pool(Frontend, name="frontend", decider=decider)
        runtime.new_pool(Backend, name="backend", decider=decider)
        run_bursts(kernel, 1)
        front = runtime.stub("frontend")
        back = runtime.stub("backend")
        assert front.handle(1.0) == "ok"
        assert back.work() == "done"
