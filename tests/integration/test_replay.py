"""Full-stack trace replay: real invocations drive measured scaling.

The deepest integration test in the suite: an abrupt workload trace is
replayed as *actual* remote calls against an elastic pool whose
fine-grained policy sees only its own measured method statistics — no
driver hints, no modeled utilization.  The pool must follow the trace.
"""

import pytest

from repro.apps.common import ThroughputScaledService
from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel
from repro.workloads.patterns import AbruptPattern, PiecewiseLinearPattern
from repro.workloads.replay import ReplayDriver


class TraceService(ThroughputScaledService):
    CAPACITY_PER_MEMBER = 5.0  # calls/s per member, tiny for tests
    TARGET_UTILIZATION = 0.8

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(12)
        self.set_burst_interval(10.0)

    def serve(self, n):
        return n


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    return ElasticRuntime.simulated(
        kernel, nodes=8, provisioner=InstantProvisioner()
    )


class TestReplayDriver:
    def test_call_volume_follows_pattern(self, kernel):
        flat = PiecewiseLinearPattern([(0, 1.0), (10, 1.0)], magnitude=600.0)
        calls = []
        driver = ReplayDriver(
            kernel, flat, calls.append, time_scale=60.0, rate_scale=0.1,
        )
        driver.start()
        kernel.run_until(driver.duration_s + 1.0)
        # 600 ops/s * 0.1 per-op scale * 60 time-scale = 3600 calls/s of
        # *trace* time compressed into 10 s of simulated time.
        assert driver.calls_issued == pytest.approx(36_000, rel=0.01)

    def test_fractional_rates_accumulate(self, kernel):
        thin = PiecewiseLinearPattern([(0, 1.0), (10, 1.0)], magnitude=3.0)
        calls = []
        driver = ReplayDriver(
            kernel, thin, calls.append, time_scale=1.0, rate_scale=0.1,
        )
        driver.start()
        kernel.run_until(driver.duration_s + 1.0)
        # 0.3 calls per step must not round away: ~180 over 600 steps.
        assert driver.calls_issued == pytest.approx(180, abs=2)

    def test_errors_counted_not_raised(self, kernel):
        flat = PiecewiseLinearPattern([(0, 1.0), (1, 1.0)], magnitude=60.0)

        def explode(i):
            raise RuntimeError("call failed")

        driver = ReplayDriver(
            kernel, flat, explode, time_scale=1.0, rate_scale=0.5,
        )
        driver.start()
        kernel.run_until(driver.duration_s + 1.0)
        assert driver.errors == driver.calls_issued > 0

    def test_invalid_scales_rejected(self, kernel):
        flat = PiecewiseLinearPattern([(0, 1.0), (1, 1.0)], magnitude=1.0)
        with pytest.raises(ValueError):
            ReplayDriver(kernel, flat, print, time_scale=0)

    def test_double_start_rejected(self, kernel):
        flat = PiecewiseLinearPattern([(0, 1.0), (1, 1.0)], magnitude=1.0)
        driver = ReplayDriver(kernel, flat, print)
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()


class TestFullStackReplay:
    def test_pool_follows_abrupt_trace_from_measured_traffic(
        self, kernel, runtime
    ):
        """Replay the Figure 7a trace (scaled) as real invocations; the
        pool must grow toward the peak and shrink back afterwards, on
        measured statistics alone."""
        runtime.new_pool(TraceService)
        kernel.run_until(1.0)
        stub = runtime.stub("TraceService")

        # 450 min trace compressed to 270 s of virtual time; peak A of
        # 50k ops/s scaled to 40 calls/s -> needs 10 members at peak.
        pattern = AbruptPattern(50_000.0)
        driver = ReplayDriver(
            kernel,
            pattern,
            lambda i: stub.serve(i),
            time_scale=100.0,
            rate_scale=40.0 / 50_000.0 / 100.0,
        )
        driver.start()

        sizes = []
        record = runtime.record("TraceService")
        record.on_tick.append(lambda p: sizes.append(p.size()))
        kernel.run_until(driver.duration_s + 15.0)

        assert driver.calls_issued > 1000
        assert driver.errors == 0
        # Grew far beyond the minimum at the peak...
        assert max(sizes) >= 8
        # ...and returned to the minimum after the trace's quiet tail.
        assert sizes[-1] == 2

    def test_replayed_traffic_is_load_balanced(self, kernel, runtime):
        pool = runtime.new_pool(TraceService, name="lb")
        kernel.run_until(1.0)
        stub = runtime.stub("lb")
        flat = PiecewiseLinearPattern([(0, 1.0), (5, 1.0)], magnitude=600.0)
        driver = ReplayDriver(
            kernel, flat, lambda i: stub.serve(i),
            time_scale=60.0, rate_scale=0.01,
        )
        driver.start()
        kernel.run_until(driver.duration_s + 1.0)
        served = [
            m.skeleton.stats.snapshot().get("serve")
            for m in pool.active_members()
        ]
        counts = [s.calls for s in served if s is not None]
        assert len(counts) == pool.size()
        assert min(counts) > 0.7 * max(counts)  # roughly even
