"""Concurrency hardening: threaded access to the shared substrates and
multiple pools interleaving on one runtime."""

import threading

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import ElasticObject
from repro.core.runtime import ElasticRuntime
from repro.groupcomm.channel import Channel
from repro.sim.kernel import Kernel


class Fast(ElasticObject):
    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(4)
        self.set_burst_interval(30.0)

    def ping(self):
        return "fast"


class Slow(ElasticObject):
    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(4)
        self.set_burst_interval(75.0)

    def ping(self):
        return "slow"


class TestMultiPoolInterleaving:
    def test_different_burst_intervals_tick_independently(self):
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel, nodes=6, provisioner=InstantProvisioner()
        )
        runtime.new_pool(Fast)
        runtime.new_pool(Slow)
        kernel.run_until(301.0)
        # 300 s: Fast ticked at 30,60,...,300 -> 10; Slow at 75,150,225,300 -> 4.
        assert runtime.record("Fast").tick_count == 10
        assert runtime.record("Slow").tick_count == 4

    def test_both_pools_serve_through_their_stubs(self):
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel, nodes=6, provisioner=InstantProvisioner()
        )
        runtime.new_pool(Fast)
        runtime.new_pool(Slow)
        kernel.run_until(1.0)
        assert runtime.stub("Fast").ping() == "fast"
        assert runtime.stub("Slow").ping() == "slow"

    def test_shutdown_of_one_pool_leaves_other_running(self):
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel, nodes=6, provisioner=InstantProvisioner()
        )
        fast = runtime.new_pool(Fast)
        runtime.new_pool(Slow)
        kernel.run_until(1.0)
        fast.shutdown()
        kernel.run_until(200.0)
        assert runtime.stub("Slow").ping() == "slow"
        assert runtime.record("Slow").tick_count > 0


class TestChannelThreadSafety:
    def test_concurrent_broadcasts_deliver_everything(self):
        channel = Channel("stress")
        received = []
        lock = threading.Lock()

        def sink(sender, msg):
            with lock:
                received.append(msg)

        for i in range(4):
            channel.join(f"m{i}", sink)

        def blast(sender):
            for i in range(50):
                channel.broadcast(sender, f"{sender}-{i}")

        threads = [
            threading.Thread(target=blast, args=(f"m{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 4 senders x 50 messages x 4 members = 800 deliveries.
        assert len(received) == 800

    def test_join_leave_churn_during_broadcast(self):
        channel = Channel("churn")
        channel.join("anchor", lambda s, m: None)
        stop = threading.Event()
        errors = []

        def churner():
            i = 0
            while not stop.is_set():
                name = f"volatile-{i}"
                try:
                    channel.join(name, lambda s, m: None)
                    channel.leave(name)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                i += 1

        def broadcaster():
            while not stop.is_set():
                try:
                    channel.broadcast("anchor", "tick")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [
            threading.Thread(target=churner),
            threading.Thread(target=broadcaster),
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert channel.view().contains("anchor")


class TestStoreUnderThreadedPools:
    def test_two_live_pools_share_store_without_corruption(self):
        runtime = ElasticRuntime.local(nodes=6)
        try:

            class A(ElasticObject):
                def __init__(self):
                    super().__init__()
                    self.set_min_pool_size(2)
                    self.set_max_pool_size(3)

                def bump(self):
                    return self._ermi_ctx.store.incr("shared-counter")

            class B(A):
                pass

            runtime.new_pool(A)
            runtime.new_pool(B)
            stub_a = runtime.stub("A")
            stub_b = runtime.stub("B")

            def worker(stub):
                for _ in range(50):
                    stub.bump()

            threads = [
                threading.Thread(target=worker, args=(s,))
                for s in (stub_a, stub_b, stub_a, stub_b)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert runtime.store.get("shared-counter") == 200
        finally:
            runtime.shutdown()
