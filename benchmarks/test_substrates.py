"""Substrate microbenchmarks: the building blocks under the middleware.

These are genuine pytest-benchmark measurements (many rounds, statistics
in the table): RMI invocation overhead, store operation throughput,
distributed lock handoff, group broadcast, and marshalling — the costs
section 4.1 of the paper discusses when it warns that shared state and
synchronization reduce the parallelism elastic pools can extract.
"""

from __future__ import annotations

import pytest

from repro.core.balancer import FirstFitRebalancer
from repro.kvstore.locks import LockManager
from repro.kvstore.store import HyperStore
from repro.groupcomm.channel import Channel
from repro.rmi.marshal import marshal_value, unmarshal_value
from repro.rmi.remote import Remote, RemoteRef, Skeleton, Stub
from repro.rmi.transport import DirectTransport


class Echo(Remote):
    def echo(self, value):
        return value


@pytest.fixture
def rmi_pair():
    transport = DirectTransport()
    endpoint = transport.add_endpoint("server")
    skeleton = Skeleton(Echo(), transport, endpoint.endpoint_id)
    return Stub(transport, skeleton.ref())


def test_bench_rmi_invocation(benchmark, rmi_pair):
    """One full RMI round trip: marshal args, dispatch, marshal result."""
    result = benchmark(rmi_pair.echo, {"key": "value", "n": 42})
    assert result == {"key": "value", "n": 42}


def test_bench_store_put_get(benchmark):
    store = HyperStore(nodes=4)

    def put_get():
        store.put("bench-key", {"payload": 123})
        return store.get("bench-key")

    assert benchmark(put_get) == {"payload": 123}


def test_bench_store_atomic_update(benchmark):
    store = HyperStore(nodes=4)
    store.put("counter", 0)
    benchmark(store.update, "counter", lambda v: v + 1)
    assert store.get("counter") > 0


def test_bench_lock_acquire_release(benchmark):
    locks = LockManager()

    def cycle():
        locks.lock("bench", "owner")
        locks.unlock("bench", "owner")

    benchmark(cycle)
    assert locks.holder("bench") is None


def test_bench_group_broadcast(benchmark):
    channel = Channel("bench")
    sink = lambda sender, msg: None
    for i in range(8):
        channel.join(f"member-{i}", sink)
    count = benchmark(channel.broadcast, "member-0", {"kind": "bench"})
    assert count == 8


def test_bench_marshalling(benchmark):
    payload = {
        "orders": [
            {"id": i, "symbol": "AAPL", "qty": 100, "price": 150.25}
            for i in range(20)
        ]
    }

    def roundtrip():
        return unmarshal_value(marshal_value(payload))

    assert benchmark(roundtrip) == payload


def test_bench_first_fit_plan(benchmark):
    pending = {uid: (uid * 37) % 100 for uid in range(1, 33)}
    refs = {uid: RemoteRef(f"ep-{uid}", f"o-{uid}", uid) for uid in pending}
    rebalancer = FirstFitRebalancer()
    decision = benchmark(rebalancer.plan, pending, refs)
    assert set(decision.plan) == set(pending)


def test_bench_consistent_hash_lookup(benchmark):
    from repro.kvstore.ring import HashRing

    ring = HashRing(vnodes=64)
    for i in range(16):
        ring.add_node(f"node-{i}")
    owner = benchmark(ring.owner, "some/hot/key")
    assert owner.startswith("node-")
