"""Figures 7a and 7b: the workload patterns driving every experiment.

The bench regenerates the traces and checks the properties the paper
describes: the abrupt pattern covers gradual increase/decrease and rapid
increase/decrease with peak at point A; the cyclic pattern repeats three
times, peaking at point B = 1.2 * A.
"""

from __future__ import annotations

from repro.experiments.figures import figure7a_workload, figure7b_workload
from repro.workloads.patterns import POINT_A


def test_fig7a_abrupt_pattern(once):
    trace = once(figure7a_workload, "marketcetera")
    rates = [rate for _, rate in trace]
    minutes = [minute for minute, _ in trace]

    assert minutes[-1] == 450  # the paper's 450-minute trace
    assert max(rates) == POINT_A["marketcetera"]  # peak touches point A
    assert min(rates) >= 0

    # Rapid increase and decrease exist (> half the magnitude in 5 min).
    jumps = [b - a for a, b in zip(rates, rates[1:])]
    assert max(jumps) > 0.4 * POINT_A["marketcetera"]
    assert min(jumps) < -0.4 * POINT_A["marketcetera"]

    print("\nFigure 7a (marketcetera): minute -> orders/s")
    for minute, rate in trace[:: max(1, len(trace) // 15)]:
        print(f"  {minute:6.0f} min  {rate:10.0f}")


def test_fig7b_cyclic_pattern(once):
    trace = once(figure7b_workload, "marketcetera")
    rates = [rate for _, rate in trace]
    minutes = [minute for minute, _ in trace]
    point_b = POINT_A["marketcetera"] * 1.2

    assert minutes[-1] == 500  # the paper's 500-minute trace
    assert max(rates) >= 0.99 * point_b  # peak touches point B

    # Three cycles: three local maxima near the peak.
    peaks = sum(
        1
        for i in range(1, len(rates) - 1)
        if rates[i] >= rates[i - 1]
        and rates[i] >= rates[i + 1]
        and rates[i] > 0.95 * point_b
    )
    assert peaks == 3

    print("\nFigure 7b (marketcetera): minute -> orders/s")
    for minute, rate in trace[:: max(1, len(trace) // 15)]:
        print(f"  {minute:6.0f} min  {rate:10.0f}")


def test_fig7_magnitudes_per_app(once):
    """Point A differs per system (50k/75k/24k/30k); the shape is shared."""

    def collect():
        return {app: figure7a_workload(app) for app in POINT_A}

    traces = once(collect)
    for app, trace in traces.items():
        assert max(rate for _, rate in trace) == POINT_A[app]
    # Shared shape: normalized traces are identical.
    norm = {
        app: tuple(round(rate / POINT_A[app], 9) for _, rate in trace)
        for app, trace in traces.items()
    }
    assert len(set(norm.values())) == 1
