"""Async-transport benchmark: the event-loop scalability claims.

Runs :func:`repro.experiments.benchreport.run_async_suite` once, writes
``BENCH_rmi_async.json`` at the repo root, and asserts the headline
claims:

- the asyncio transport sustains >= 2048 concurrent in-flight calls
  (measured by the gated in-flight probe, where every handler parks
  until the full window is admitted);
- at high concurrency (c1024 and c4096) the asyncio transport beats the
  threaded transport's throughput on the same 1 ms echo workload;
- the emitted JSON is well-formed against the ``repro.bench/v1``
  schema.

Set ``ERMI_BENCH_SCALE`` (e.g. ``0.05``) to shrink iteration counts for
CI smoke runs; the assertions are scale-independent.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.benchreport import (
    ASYNC_CONCURRENCY,
    format_table,
    load_report,
    run_async_suite,
    validate_report,
    write_report,
)

REPORT_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_rmi_async.json"
)

SUSTAINED_INFLIGHT_FLOOR = 2048


@pytest.fixture(scope="module")
def suite():
    extra: dict = {}
    records = run_async_suite(extra_out=extra)
    write_report(str(REPORT_PATH), "rmi_async", records, extra=extra)
    print("\n" + format_table(records))
    return {record.name: record for record in records}, extra


class TestAsyncBenchmark:
    def test_report_emitted_and_wellformed(self, suite):
        assert REPORT_PATH.exists()
        doc = load_report(str(REPORT_PATH))
        assert validate_report(doc) == []
        names = {record["name"] for record in doc["records"]}
        expected = {
            f"{kind}-c{c}"
            for kind in ("threaded", "aio")
            for c in ASYNC_CONCURRENCY
        }
        assert expected <= names

    def test_sustains_thousands_of_inflight_calls(self, suite):
        """The tentpole claim: one event loop holds thousands of calls
        in flight at once (the threaded transport tops out at its
        worker count)."""
        _, extra = suite
        probe = extra["inflight-probe"]
        assert probe["inflight_hwm"] >= SUSTAINED_INFLIGHT_FLOOR, (
            f"in-flight high-water mark {probe['inflight_hwm']} < "
            f"{SUSTAINED_INFLIGHT_FLOOR}"
        )

    def test_aio_beats_threaded_at_high_concurrency(self, suite):
        records, _ = suite
        for concurrency in (1024, 4096):
            aio = records[f"aio-c{concurrency}"].calls_per_sec
            threaded = records[f"threaded-c{concurrency}"].calls_per_sec
            assert aio > threaded, (
                f"c{concurrency}: aio {aio:.0f} calls/s <= threaded "
                f"{threaded:.0f} calls/s"
            )

    def test_window_metadata_recorded(self, suite):
        records, extra = suite
        for concurrency in ASYNC_CONCURRENCY:
            meta = extra[f"aio-c{concurrency}"]
            assert meta["inflight_hwm"] > 0
            assert meta["window"] >= meta["inflight_hwm"]

    def test_percentiles_are_coherent(self, suite):
        records, _ = suite
        for record in records.values():
            assert 0 < record.p50_us <= record.p99_us
            assert record.calls > 0
            assert record.elapsed_s > 0
