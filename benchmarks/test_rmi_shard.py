"""Sharded-routing benchmark: the key-affinity claims.

Runs :func:`repro.experiments.benchreport.run_shard_suite` once, writes
``BENCH_rmi_shard.json`` at the repo root, and asserts the headline
claims:

- affinity routing beats flat round-robin on hot-key p99 latency at
  c256 — per-member caches stay warm when each member only sees its
  shard's slice of the keyspace;
- affinity routing's overall hit rate beats flat round-robin's;
- the Decider-driven elasticity probe shows exactly one (hot) shard
  growing while the others hold their minimum — per-shard independent
  scaling;
- the emitted JSON is well-formed against the ``repro.bench/v1``
  schema.

Set ``ERMI_BENCH_SCALE`` (e.g. ``0.05``) to shrink the measured window
count for CI smoke runs; warmup is fixed-size so the assertions compare
warm steady states at every scale.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.benchreport import (
    SHARD_COUNT,
    format_table,
    load_report,
    run_shard_suite,
    validate_report,
    write_report,
)

REPORT_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_rmi_shard.json"
)

#: Required hot-key p99 advantage of affinity over flat routing.  The
#: measured ratio sits near 3x; 1.3x keeps noisy CI runners honest
#: without flaking.
HOT_P99_RATIO_FLOOR = 1.3


@pytest.fixture(scope="module")
def suite():
    extra: dict = {}
    records = run_shard_suite(extra_out=extra)
    write_report(str(REPORT_PATH), "rmi_shard", records, extra=extra)
    print("\n" + format_table(records))
    return {record.name: record for record in records}, extra


class TestShardBenchmark:
    def test_report_emitted_and_wellformed(self, suite):
        assert REPORT_PATH.exists()
        doc = load_report(str(REPORT_PATH))
        assert validate_report(doc) == []
        names = {record["name"] for record in doc["records"]}
        assert {"shard-flat-c256", "shard-affinity-c256"} <= names

    def test_affinity_beats_flat_on_hot_key_p99(self, suite):
        """The tentpole claim: routing a key's calls to its shard keeps
        that key's state warm, so the hot keys' p99 stays at hit
        latency while flat round-robin churns them out to miss cost."""
        _, extra = suite
        flat = extra["shard-flat-c256"]["hot_key_p99_us"]
        affinity = extra["shard-affinity-c256"]["hot_key_p99_us"]
        assert affinity > 0
        assert flat >= HOT_P99_RATIO_FLOOR * affinity, (
            f"hot-key p99: affinity {affinity:.0f}us vs flat {flat:.0f}us "
            f"(< {HOT_P99_RATIO_FLOOR}x advantage)"
        )

    def test_affinity_improves_hit_rate(self, suite):
        _, extra = suite
        flat = extra["shard-flat-c256"]["hit_rate"]
        affinity = extra["shard-affinity-c256"]["hit_rate"]
        assert affinity > flat, (
            f"hit rate: affinity {affinity} <= flat {flat}"
        )

    def test_shards_scale_independently(self, suite):
        """Each shard runs its own Decider ticks: only the hot shard
        grows, the rest stay at their minimum."""
        _, extra = suite
        probe = extra["shard-elasticity"]
        hot = probe["hot_shard"]
        before = probe["sizes_before"]
        after = probe["sizes_after"]
        assert len(after) == SHARD_COUNT >= 4
        assert after[hot] == probe["hot_target"] > before[hot]
        for index in range(SHARD_COUNT):
            if index != hot:
                assert after[index] == before[index]

    def test_per_shard_epoch_keys_published(self, suite):
        _, extra = suite
        probe = extra["shard-elasticity"]
        assert probe["epoch_keys"] == [
            f"probe-shard/shard{i}$epoch" for i in range(SHARD_COUNT)
        ]
        assert probe["shard_map"]["count"] == SHARD_COUNT
        assert probe["shard_map"]["pools"] == [
            f"probe-shard/shard{i}" for i in range(SHARD_COUNT)
        ]

    def test_percentiles_are_coherent(self, suite):
        records, _ = suite
        for record in records.values():
            assert 0 < record.p50_us <= record.p99_us
            assert record.calls > 0
            assert record.elapsed_s > 0
