"""Robustness sweeps: the headline ordering is not a seed artifact.

The reproduction's randomness enters only through provisioning-latency
jitter (everything else is deterministic), so the sweeps double as a
sensitivity analysis: the ordering must hold at every seed and at every
cluster-headroom setting.
"""

from __future__ import annotations

from repro.experiments.sweeps import cluster_size_sweep, seed_sweep


def test_seed_sweep_ordering_stable(once):
    summary = once(seed_sweep, "7c", (0, 1, 2, 3))
    print("\nseed sweep (7c): per-deployment average agility")
    for name in summary.values:
        points = [f"{v:.2f}" for v in summary.values[name]]
        print(f"  {name:<20} {points}  (sd {summary.stdev(name):.3f})")
    assert summary.ordering_stable(
        "elasticrmi", "cloudwatch", "overprovisioning"
    )
    assert summary.ordering_stable(
        "elasticrmi", "elasticrmi-cpumem", "overprovisioning"
    )
    # Jitter never moves CloudWatch by more than a member on average.
    assert summary.stdev("cloudwatch") < 1.0


def test_cluster_headroom_sweep(once):
    """ElasticRMI's advantage does not come from generous cluster slack:
    even when the pool can only just cover the peak (headroom 1.0), it
    beats CloudWatch by a wide margin."""
    results = once(cluster_size_sweep, "marketcetera", "abrupt", (1.0, 1.25, 1.5))
    print("\ncluster-headroom sweep (marketcetera, abrupt)")
    for headroom, point in results.items():
        print(
            f"  headroom {headroom:4.2f}: "
            f"elasticrmi {point['elasticrmi']:5.2f}  "
            f"cloudwatch {point['cloudwatch']:5.2f}"
        )
    for point in results.values():
        assert point["elasticrmi"] < 0.5 * point["cloudwatch"]
