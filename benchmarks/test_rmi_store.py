"""Store watch/cache benchmark: push beats poll on the coordination path.

Runs :func:`repro.experiments.benchreport.run_store_suite` once, writes
``BENCH_rmi_store.json`` at the repo root, and asserts the headline
claims:

- the watched epoch path performs **zero** store reads per steady-state
  invocation (the poll baseline pays exactly one ``get`` per call);
- watched invoke latency is no worse than the poll baseline (p50, with
  slack for CI noise);
- membership convergence after an epoch bump is at least 2x faster for
  256 watch-mode client caches than for the lease-mode (throttled-poll)
  baseline under the c256 churn scenario;
- the emitted JSON is well-formed against the ``repro.bench/v1`` schema.

Set ``ERMI_BENCH_SCALE`` (e.g. ``0.05``) to shrink iteration counts for
CI smoke runs; the read-per-call and convergence contrasts hold at any
scale because they are structural, not throughput-dependent.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.benchreport import (
    format_table,
    load_report,
    run_store_suite,
    validate_report,
    write_report,
)

REPORT_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_rmi_store.json"
)

#: Required convergence advantage of push over lease-poll.  Measured
#: ratios sit around 100-250x (sub-ms push vs ~lease-length wait); 2x is
#: the acceptance floor and keeps noisy CI runners honest.
CONVERGENCE_SPEEDUP_FLOOR = 2.0

#: Allowed p50 latency slack for the watch leg relative to poll: the
#: watch path must be "no worse", measured with CI-noise headroom.
WATCH_P50_SLACK = 1.20


@pytest.fixture(scope="module")
def suite():
    extra: dict = {}
    records = run_store_suite(extra_out=extra)
    write_report(str(REPORT_PATH), "rmi_store", records, extra=extra)
    print("\n" + format_table(records))
    return {record.name: record for record in records}, extra


class TestStoreBenchmark:
    def test_report_emitted_and_wellformed(self, suite):
        assert REPORT_PATH.exists()
        doc = load_report(str(REPORT_PATH))
        assert validate_report(doc) == []
        names = {record["name"] for record in doc["records"]}
        assert {
            "epoch-poll-c1",
            "epoch-watch-c1",
            "churn-poll-c256",
            "churn-watch-c256",
        } <= names

    def test_watched_epoch_path_does_zero_store_reads(self, suite):
        """The tentpole claim: the per-call epoch ``get`` is gone —
        membership changes are pushed into the stub's cache, so the
        steady-state invocation path never touches the store."""
        _, extra = suite
        steady = extra["steady-state"]
        assert steady["poll_epoch_reads_per_call"] == pytest.approx(1.0)
        assert steady["watch_epoch_reads_per_call"] == 0.0

    def test_watched_latency_no_worse_than_poll(self, suite):
        records, _ = suite
        poll = records["epoch-poll-c1"]
        watch = records["epoch-watch-c1"]
        assert watch.p50_us <= poll.p50_us * WATCH_P50_SLACK, (
            f"watched p50 {watch.p50_us:.1f}us vs poll {poll.p50_us:.1f}us"
        )

    def test_push_convergence_beats_lease_poll(self, suite):
        _, extra = suite
        convergence = extra["convergence"]
        assert convergence["speedup_p50"] >= CONVERGENCE_SPEEDUP_FLOOR, (
            f"convergence speedup {convergence['speedup_p50']}x "
            f"(< {CONVERGENCE_SPEEDUP_FLOOR}x floor): "
            f"watch p50 {convergence['watch_convergence_p50_ms']}ms vs "
            f"poll p50 {convergence['poll_convergence_p50_ms']}ms"
        )

    def test_convergence_measured_at_full_client_count(self, suite):
        records, extra = suite
        assert extra["convergence"]["clients"] == 256
        # Every cache converged in every round: calls = clients * rounds.
        rounds = extra["convergence"]["rounds"]
        assert records["churn-watch-c256"].calls == 256 * rounds
        assert records["churn-poll-c256"].calls == 256 * rounds
