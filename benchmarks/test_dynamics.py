"""Step-response bench: the transient behind the Figure 7 averages.

After the abrupt jump to point A, fine-grained scaling provisions the
~2x requirement within one burst interval or two (invisible at 10-minute
sampling), while ±1-per-period threshold scaling spends the better part
of an hour short by around ten members — the lag that shows up as the
CloudWatch agility spikes in Figure 7c.
"""

from __future__ import annotations

from repro.experiments.dynamics import step_response_comparison


def test_step_response_ordering(once):
    responses = once(step_response_comparison, "marketcetera")
    print("\nstep response to the point-A jump (marketcetera):")
    for name, r in responses.items():
        lag = "never" if r.lag_min is None else f"{r.lag_min:5.1f} min"
        print(
            f"  {name:<20} requirement {r.requirement:>3}  "
            f"lag {lag}  worst shortage {r.worst_shortage:.0f}"
        )

    ermi = responses["elasticrmi"]
    cloud = responses["cloudwatch"]
    cpumem = responses["elasticrmi-cpumem"]
    oracle = responses["overprovisioning"]

    # ElasticRMI converges within one sampling interval and is never
    # caught short at 10-minute granularity.
    assert ermi.lag_min is not None and ermi.lag_min <= 10.0
    assert ermi.worst_shortage == 0.0
    # The oracle is by construction never short.
    assert oracle.worst_shortage == 0.0
    # Threshold systems lag by tens of minutes with a deep deficit.
    for slow in (cloud, cpumem):
        assert slow.lag_min is None or slow.lag_min >= 30.0
        assert slow.worst_shortage >= 5
    # And the fine-grained system is at least 3x faster to converge.
    if cloud.lag_min is not None:
        assert cloud.lag_min >= 3 * ermi.lag_min


def test_step_response_across_apps(once):
    """The convergence-speed gap holds for every application."""

    def run_all():
        return {
            app: step_response_comparison(app)
            for app in ("marketcetera", "paxos", "dcs")
        }

    by_app = once(run_all)
    for app, responses in by_app.items():
        ermi = responses["elasticrmi"]
        cloud = responses["cloudwatch"]
        assert ermi.worst_shortage <= cloud.worst_shortage, app
        if ermi.lag_min is not None and cloud.lag_min is not None:
            assert ermi.lag_min <= cloud.lag_min, app
