"""Ablation benches: which design choice buys how much agility.

Not figures from the paper, but the decompositions DESIGN.md calls out —
each isolates one mechanism behind the Figure 7 gap.  The provisioning
ablation in particular *verifies the paper's own explanation* of why
ElasticRMI-CPUMem tracks CloudWatch despite much faster provisioning
(section 5.5: CloudWatch's boot latency "is well within the sampling
interval of 10 minutes").
"""

from __future__ import annotations

from repro.experiments.ablations import (
    burst_interval_ablation,
    max_step_ablation,
    policy_ablation,
    provisioning_ablation,
)


def show(title, results):
    print(f"\n{title}")
    for key, result in results.items():
        print(f"  {str(key):<24} avg agility {result.average_agility:6.2f}")


def test_ablation_burst_interval(once):
    """Decision cadence: agility degrades monotonically as the burst
    interval stretches from 60 s toward CloudWatch's alarm periods."""
    results = once(burst_interval_ablation)
    show("burst-interval ablation (marketcetera, abrupt)", results)
    agility = {k: v.average_agility for k, v in results.items()}
    assert agility[60.0] <= agility[300.0] <= agility[600.0]
    # The paper's 60 s default captures nearly all of the benefit.
    assert agility[60.0] <= 1.15 * agility[30.0]


def test_ablation_vote_magnitude(once):
    """Multi-member votes: fine-grained scaling that can only move +-1
    per interval loses a chunk of its advantage on abrupt workloads."""
    results = once(max_step_ablation)
    show("vote-magnitude ablation (marketcetera, abrupt)", results)
    agility = {k: v.average_agility for k, v in results.items()}
    assert agility[8] <= agility[2] <= agility[1]
    assert agility[1] > 1.25 * agility[8]


def test_ablation_metric_choice(once):
    """The core claim, deconfounded: same runtime, same provisioner,
    same 60 s cadence — application metrics still beat CPU/RAM
    thresholds decisively."""
    results = once(policy_ablation)
    show("metric-choice ablation (marketcetera, abrupt)", results)
    fine = results["fine-grained"].average_agility
    coarse = results["cpu-mem-thresholds"].average_agility
    assert fine < coarse
    assert coarse > 1.5 * fine


def test_ablation_provisioning_speed(once):
    """Provisioning speed alone is NOT the story: under the same
    threshold policy, minutes-scale VM boots move average agility only
    marginally at the paper's 10-minute sampling — exactly the paper's
    explanation for CPUMem ~= CloudWatch."""
    results = once(provisioning_ablation)
    show("provisioning-speed ablation (marketcetera, abrupt)", results)
    container = results["thresholds+container"].average_agility
    vm = results["thresholds+vm"].average_agility
    assert abs(container - vm) <= 0.25 * max(container, vm)
