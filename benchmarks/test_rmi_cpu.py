"""Cpu-suite benchmark: multi-core skeleton execution claims.

Runs :func:`repro.experiments.benchreport.run_cpu_suite` once, writes
``BENCH_rmi_cpu.json`` at the repo root, and asserts the headline
claims at floors that depend on the cores actually available:

- with >= 4 cores, the process pool beats the threaded offload pool by
  >= 3x on cpu-bound handlers of >= 5 ms (>= 2x at smoke scale, where
  per-leg call counts are tiny and noisy);
- shared-memory payload transfer beats pipe-copy on the 4 MiB leg by
  >= 1.5x at full scale regardless of core count (the win is copy
  avoidance, not parallelism);
- on boxes with fewer cores — including the 1-core containers this
  repo often builds in — the parallelism claim is physically
  unobtainable, so the suite only sanity-checks that the pool works
  and that its relative cost shrinks as handler cost grows.

Separately, the zero-overhead gate: a skeleton whose implementation
declares no ``@cpu_bound`` method must dispatch within 5% of the
pre-cpu-dispatch skeleton (a subclass with the cpu branch deleted
outright), using the same best-of-minima retry loop as the
observability overhead gate.

Set ``ERMI_BENCH_SCALE`` (e.g. ``0.05``) to shrink iteration counts
for CI smoke runs.
"""

from __future__ import annotations

import asyncio
import inspect
import os
import pathlib
import time
from typing import Any

import pytest

from repro.experiments.benchreport import (
    CPU_COSTS_MS,
    CPU_PAYLOAD_MIB,
    format_table,
    load_report,
    run_cpu_suite,
    validate_report,
    write_report,
)
from repro.rmi.fastpath import marshal_error, marshal_result, unmarshal_call
from repro.rmi.remote import Remote, Skeleton, Stub
from repro.rmi.transport import DirectTransport, Response

REPORT_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_rmi_cpu.json"
)

SCALE = float(os.environ.get("ERMI_BENCH_SCALE", "1.0"))
FULL_SCALE = SCALE >= 0.999

# Parallelism floors (process pool vs threaded offload, >= 5 ms legs).
SPEEDUP_FLOOR_FULL = 3.0
SPEEDUP_FLOOR_SMOKE = 2.0
# Zero-copy floors (shm vs pipe on the 4 MiB leg).
ZERO_COPY_FLOOR_FULL = 1.5
ZERO_COPY_FLOOR_SMOKE = 1.15

CALLS = max(200, int(20_000 * SCALE))
TRIALS = 5
TOLERANCE = 0.05


@pytest.fixture(scope="module")
def suite():
    extra: dict = {}
    records = run_cpu_suite(extra_out=extra)
    write_report(str(REPORT_PATH), "rmi_cpu", records, extra=extra)
    print("\n" + format_table(records))
    return {record.name: record for record in records}, extra


class TestCpuBenchmark:
    def test_report_emitted_and_wellformed(self, suite):
        assert REPORT_PATH.exists()
        doc = load_report(str(REPORT_PATH))
        assert validate_report(doc) == []
        names = {record["name"] for record in doc["records"]}
        expected = {
            f"cpu-{kind}-{cost}ms"
            for kind in ("thread", "proc")
            for cost in CPU_COSTS_MS
        }
        expected.add("cpu-aio-proc-5ms")
        expected |= {
            f"cpu-{kind}-{mib}mib"
            for kind in ("pipe", "shm")
            for mib in CPU_PAYLOAD_MIB
        }
        assert expected <= names
        assert doc["extra"]["cpu_count"] >= 1

    def test_process_pool_parallelism(self, suite):
        """The tentpole claim, gated on the cores the box actually has:
        the GIL serialises the threaded offload pool on pure-python
        handlers, the process pool does not."""
        _, extra = suite
        cores = extra["cpu_count"]
        speedup = extra["speedup"]
        if cores >= 4:
            floor = SPEEDUP_FLOOR_FULL if FULL_SCALE else SPEEDUP_FLOOR_SMOKE
            for cost in (5, 20):
                ratio = speedup[f"proc_vs_thread_{cost}ms"]
                assert ratio >= floor, (
                    f"{cost}ms handlers: process pool only {ratio:.2f}x the "
                    f"threaded offload pool (floor {floor}x on {cores} cores)"
                )
        else:
            # A 1-core box cannot exhibit parallelism: the process pool
            # pays IPC on top of serialised compute.  Assert the pool
            # works and that the overhead amortises as handler cost
            # grows (the ratio must improve from 1ms to 20ms).
            assert speedup["proc_vs_thread_20ms"] > 0.2
            assert (
                speedup["proc_vs_thread_20ms"]
                > speedup["proc_vs_thread_1ms"]
            )

    def test_asyncio_transport_reaches_the_pool(self, suite):
        """The aio leg routes @cpu_bound through the same pool without
        blocking the loop; it must land near the raw-executor leg."""
        records, _ = suite
        aio = records["cpu-aio-proc-5ms"].calls_per_sec
        proc = records["cpu-proc-5ms"].calls_per_sec
        assert aio >= 0.5 * proc, (
            f"aio cpu dispatch {aio:.0f} calls/s < half of the raw "
            f"executor leg {proc:.0f} calls/s"
        )

    def test_zero_copy_beats_pipe_on_large_payloads(self, suite):
        """Copy avoidance is core-count independent: at 4 MiB the shm
        path must beat pickling through the pipe."""
        _, extra = suite
        zero_copy = extra["zero_copy"]
        floor = ZERO_COPY_FLOOR_FULL if FULL_SCALE else ZERO_COPY_FLOOR_SMOKE
        big = max(CPU_PAYLOAD_MIB)
        ratio = zero_copy[f"shm_vs_pipe_{big}mib"]
        assert ratio >= floor, (
            f"{big}MiB payloads: shm only {ratio:.2f}x pipe-copy "
            f"(floor {floor}x)"
        )
        # At 1 MiB the pipe is still competitive on some kernels; shm
        # must at least not be pathologically slower.
        assert zero_copy["shm_vs_pipe_1mib"] >= 0.6

    def test_percentiles_are_coherent(self, suite):
        records, _ = suite
        for record in records.values():
            assert 0 < record.p50_us <= record.p99_us
            assert record.calls > 0
            assert record.elapsed_s > 0


# -- zero-overhead gate ----------------------------------------------------


class _Echo(Remote):
    def echo(self, value: Any) -> Any:
        return value


class _PreCpuSkeleton(Skeleton):
    """The dispatch loop as it was before cpu-bound dispatch: no
    ``self._cpu`` branch and no worker-loss catch, so it is the true
    baseline the no-cpu-methods path is held against."""

    def handle(self, request) -> Response:
        refusal = self._admission(request)
        if refusal is not None:
            return refusal
        with self._pending_lock:
            self.pending += 1
            self._drained.clear()
        started = self.clock.now()
        try:
            method, refusal = self._resolve_method(request)
            if refusal is not None:
                return refusal
            args, kwargs = unmarshal_call(request.payload)
            try:
                result = method(*args, **kwargs)
                if inspect.iscoroutine(result):
                    result = asyncio.run(result)
            except Exception as exc:
                elapsed = self.clock.now() - started
                self.stats.record(request.method, elapsed, error=True)
                if self._obs is not None:
                    self._observe(request.method, elapsed, error=True)
                return Response(kind="error", payload=marshal_error(exc))
            elapsed = self.clock.now() - started
            self.stats.record(request.method, elapsed)
            if self._obs is not None:
                self._observe(request.method, elapsed, error=False)
            return Response(kind="result", payload=marshal_result(result))
        finally:
            with self._pending_lock:
                self.pending -= 1
                if self.pending == 0 and self.draining:
                    self._drained.set()


def _make_stub(skeleton_cls: type[Skeleton]) -> Stub:
    transport = DirectTransport()
    ep = transport.add_endpoint("member-0")
    skeleton = skeleton_cls(_Echo(), transport, ep.endpoint_id)
    return Stub(transport, skeleton.ref())


def _time_calls(stub: Stub, calls: int) -> float:
    stub.echo(0)  # warm caches outside the timed region
    tick = time.perf_counter()
    for i in range(calls):
        stub.echo(i)
    return time.perf_counter() - tick


class TestNoCpuMethodsOverhead:
    def test_dispatch_within_5_percent_when_unused(self):
        """Endpoints with no @cpu_bound methods must dispatch within 5%
        of the pre-cpu-dispatch skeleton (one identity check per call)."""
        current = _make_stub(Skeleton)
        baseline = _make_stub(_PreCpuSkeleton)
        ratios = []
        for _ in range(TRIALS):
            # Interleave sides so drift hits both equally; keep minima.
            base = min(_time_calls(baseline, CALLS) for _ in range(3))
            cur = min(_time_calls(current, CALLS) for _ in range(3))
            ratio = cur / base
            ratios.append(ratio)
            if ratio <= 1.0 + TOLERANCE:
                return
        pytest.fail(
            f"no-cpu-methods dispatch exceeded the {TOLERANCE:.0%} budget "
            f"in every trial: ratios {[f'{r:.3f}' for r in ratios]}"
        )
