"""Benchmark configuration.

Every figure/table of the paper's evaluation has a bench here.  Runs are
deterministic (seeded); pytest-benchmark measures the harness runtime
while the assertions check that the *shape* of the paper's results holds
(who wins, by roughly what factor).  The printed rows are the series the
paper plots — run with ``-s`` to see them.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive deterministic run exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
