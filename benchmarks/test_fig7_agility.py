"""Figures 7c-7j: agility of the four deployments on each application
and workload.

Each bench runs the full 450/500-minute trace for all four deployments
(ElasticRMI, ElasticRMI-CPUMem, CloudWatch, Overprovisioning) and checks
the orderings and rough factors the paper reports:

- ElasticRMI has the lowest average agility and oscillates back to zero;
- ElasticRMI-CPUMem is approximately equal to CloudWatch ("the same
  conditions are used to decide on elastic scaling");
- CloudWatch is several times worse than ElasticRMI (3.4x / 4.5x /
  6.6x / 7.2x for the four apps on abrupt workloads in the paper);
- Overprovisioning is the worst of all, up to ~24x ElasticRMI, and its
  agility reaches zero only near the peak workload.

Exact values are recorded in EXPERIMENTS.md; run with ``-s`` to see the
series.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FIGURE7_PANELS,
    figure7_agility,
    print_agility_panel,
)


def check_panel_shape(panel, cw_ratio_min=1.8, cw_ratio_max=20.0, zero_check=True):
    averages = panel.averages()
    ermi = averages["elasticrmi"]
    cpumem = averages["elasticrmi-cpumem"]
    cloudwatch = averages["cloudwatch"]
    overprovision = averages["overprovisioning"]

    # Who wins: ElasticRMI strictly best, overprovisioning strictly worst.
    assert ermi < cpumem
    assert ermi < cloudwatch
    assert cloudwatch < overprovision
    assert cpumem < overprovision

    # CPUMem ~= CloudWatch (section 5.5: approximately equal).
    assert cpumem == pytest.approx(cloudwatch, rel=0.35)

    # By roughly what factor: CloudWatch is several times worse.
    ratio = panel.ratio_to_elasticrmi("cloudwatch")
    assert cw_ratio_min <= ratio <= cw_ratio_max

    if zero_check:
        # ElasticRMI "reacts aggressively by trying to push agility to
        # zero": on abrupt workloads a solid fraction of its samples sit
        # exactly at the ideal, and overprovisioning manages that only
        # at the peak.  (Cyclic traces park every deployment at the
        # minimum between cycles, so the comparison is abrupt-only.)
        ermi_zero = panel.results["elasticrmi"].zero_fraction
        assert ermi_zero >= 0.10
        assert ermi_zero >= panel.results["overprovisioning"].zero_fraction


def run_panel(once, figure):
    panel = once(figure7_agility, figure)
    print("\n" + print_agility_panel(panel))
    return panel


def test_fig7c(once):
    """Marketcetera, abrupt: the paper's headline panel (ElasticRMI avg
    ~1.37, CloudWatch ~3.4x, overprovisioning avg 24.1 / up to 24x)."""
    panel = run_panel(once, "7c")
    check_panel_shape(panel)
    ermi = panel.results["elasticrmi"]
    # Average agility close to 1, spiking at abrupt transitions.
    assert 0.5 <= ermi.average_agility <= 2.5
    assert ermi.max_agility <= 10
    # Overprovisioning optimizes for the peak: its agility reaches zero
    # somewhere (at peak) but rarely.
    op = panel.results["overprovisioning"]
    assert op.average_agility > 10


def test_fig7d(once):
    panel = run_panel(once, "7d")
    check_panel_shape(panel, zero_check=False)
    # Cyclic: overprovisioning oscillates down toward zero at each peak.
    op = panel.results["overprovisioning"]
    assert op.zero_fraction > 0


def test_fig7e(once):
    panel = run_panel(once, "7e")
    check_panel_shape(panel)


def test_fig7f(once):
    panel = run_panel(once, "7f")
    check_panel_shape(panel, zero_check=False)


def test_fig7g(once):
    """Paxos, abrupt: the largest CloudWatch/ElasticRMI gap family
    (paper: 6.6x)."""
    panel = run_panel(once, "7g")
    check_panel_shape(panel, cw_ratio_min=3.0)


def test_fig7h(once):
    panel = run_panel(once, "7h")
    check_panel_shape(panel, zero_check=False)


def test_fig7i(once):
    panel = run_panel(once, "7i")
    check_panel_shape(panel, cw_ratio_min=2.5)


def test_fig7j(once):
    panel = run_panel(once, "7j")
    check_panel_shape(panel, zero_check=False)


def test_fig7_cross_panel_summary(once):
    """The cross-cutting claims of section 5.5, checked over all panels:
    relying solely on externally observable metrics decreases elasticity
    (CloudWatch/CPUMem always worse than ElasticRMI), and abrupt
    workloads hurt overprovisioning the most."""

    def run_all():
        return {fig: figure7_agility(fig) for fig in FIGURE7_PANELS}

    panels = once(run_all)
    for fig, panel in panels.items():
        averages = panel.averages()
        assert averages["elasticrmi"] == min(averages.values()), fig
        assert averages["overprovisioning"] == max(averages.values()), fig
    # Overprovisioning suffers more under abrupt than cyclic workloads
    # for every app (paper: 24.1 abrupt vs 17.2 cyclic for Marketcetera).
    for app_figs in (("7c", "7d"), ("7e", "7f"), ("7g", "7h"), ("7i", "7j")):
        abrupt, cyclic = app_figs
        assert (
            panels[abrupt].results["overprovisioning"].average_agility
            > panels[cyclic].results["overprovisioning"].average_agility
        )
