"""Batched-invocation benchmark: async windows vs one-message-per-call.

Runs :func:`repro.experiments.benchreport.run_batching_suite` once,
writes ``BENCH_rmi_batching.json`` at the repo root, and asserts the
headline claims:

- at 64 concurrent callers, batched pipelined invocation sustains
  >= 2x the unbatched throughput on the threaded transport (the
  committed full-scale report shows ~3x);
- the batcher actually coalesces under concurrency (mean batch size
  well above 1) and respects its in-flight window;
- an attached-but-disabled batcher keeps the synchronous single-caller
  path within a few percent of the seed path (idle-cost neutrality);
- the emitted JSON is well-formed against the ``repro.bench/v1`` schema.

Set ``ERMI_BENCH_SCALE`` (e.g. ``0.05``) to shrink iteration counts for
CI smoke runs; the assertions are scale-independent except where noted
with generous smoke-proof margins.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.benchreport import (
    BATCH_INFLIGHT,
    bench_scale,
    format_table,
    load_report,
    run_batching_suite,
    validate_report,
    write_report,
)

REPORT_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_rmi_batching.json"
)


@pytest.fixture(scope="module")
def report():
    extra: dict = {}
    suite = run_batching_suite(extra_out=extra)
    write_report(str(REPORT_PATH), "rmi_batching", suite, extra=extra)
    print("\n" + format_table(suite))
    return {record.name: record for record in suite}, extra


class TestBatchingBenchmark:
    def test_report_emitted_and_wellformed(self, report):
        assert REPORT_PATH.exists()
        doc = load_report(str(REPORT_PATH))
        assert validate_report(doc) == []
        names = {record["name"] for record in doc["records"]}
        assert {
            "batch-off-c1",
            "batch-on-c1",
            "batch-off-c8",
            "batch-on-c8",
            "batch-off-c64",
            "batch-on-c64",
            "sync-c1-nobatcher",
            "sync-c1-batcher-off",
        } <= names
        assert "batch-on-c64" in doc.get("extra", {})

    def test_batching_at_least_2x_at_64_callers(self, report):
        """The tentpole claim: coalescing concurrent same-endpoint calls
        into shared wire messages at least doubles throughput under
        heavy fan-in."""
        records, _ = report
        batched = records["batch-on-c64"].calls_per_sec
        unbatched = records["batch-off-c64"].calls_per_sec
        # At full scale the ratio is ~3x and 2x is the acceptance bar.
        # Smoke scale runs a single window per caller, where thread
        # startup dominates; keep a reduced-but-real margin there.
        floor = 2.0 if bench_scale() >= 1.0 else 1.4
        assert batched >= floor * unbatched, (
            f"batched {batched:.0f} calls/s vs unbatched {unbatched:.0f} "
            f"calls/s: ratio {batched / unbatched:.2f}x < {floor}x"
        )

    def test_batching_helps_at_moderate_fanin_too(self, report):
        records, _ = report
        batched = records["batch-on-c8"].calls_per_sec
        unbatched = records["batch-off-c8"].calls_per_sec
        # Smoke-proof margin: the win at c=8 is real but smaller.
        assert batched >= 1.2 * unbatched

    def test_coalescing_happened_under_concurrency(self, report):
        _, extra = report
        stats = extra["batch-on-c64"]
        assert stats["coalesce_ratio"] > 4.0
        assert stats["batches"] > 0
        assert 1 <= stats["inflight_hwm"] <= BATCH_INFLIGHT

    def test_single_caller_windows_not_pessimized(self, report):
        records, _ = report
        batched = records["batch-on-c1"].calls_per_sec
        unbatched = records["batch-off-c1"].calls_per_sec
        # A lone pipelining caller must not pay for the combiner:
        # generous smoke margin, the committed report is ~parity.
        assert batched >= 0.7 * unbatched

    def test_sync_idle_cost_neutrality(self, report):
        """An attached-but-disabled batcher must be free: the sync
        single-caller path stays within noise of the seed path."""
        records, _ = report
        seed_path = records["sync-c1-nobatcher"].calls_per_sec
        with_off = records["sync-c1-batcher-off"].calls_per_sec
        # CI smoke margin 25%; the committed full-scale report is <= 5%.
        assert with_off >= 0.75 * seed_path, (
            f"disabled batcher {with_off:.0f} calls/s vs seed "
            f"{seed_path:.0f} calls/s"
        )

    def test_percentiles_are_coherent(self, report):
        records, _ = report
        for record in records.values():
            assert 0 < record.p50_us <= record.p99_us
            assert record.calls > 0
            assert record.elapsed_s > 0
