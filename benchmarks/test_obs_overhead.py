"""Observability must be pay-for-what-you-use.

The acceptance gate: with ``obs=None`` (the default), the instrumented
elastic-stub invocation path stays within 5% of an *untraced* baseline
— a subclass whose ``_invoke`` is the pre-instrumentation body with the
``_note_*`` hooks deleted outright.  The disabled path costs one
``is not None`` branch per hook site, which this measures end to end.

Microbenchmarks at a 5% tolerance are noisy, so the comparison uses
best-of-minima with a bounded retry loop: each trial times many calls,
keeps the minimum per side, and the test passes as soon as one trial is
inside the bound (scheduler blips inflate times, never deflate them).
"""

from __future__ import annotations

import os
import time
from typing import Any

import pytest

from repro.core.balancer import ElasticStub
from repro.errors import (
    ApplicationError,
    ConnectError,
    MemberDrainedError,
    RemoteError,
)
from repro.obs import Observability
from repro.rmi.fastpath import marshal_call
from repro.rmi.remote import Remote, Skeleton
from repro.rmi.transport import DirectTransport
from repro.sim.clock import SimClock

SCALE = float(os.environ.get("ERMI_BENCH_SCALE", "1.0"))
CALLS = max(200, int(20_000 * SCALE))
TRIALS = 5
TOLERANCE = 0.05


class _Echo(Remote):
    def echo(self, value: Any) -> Any:
        return value


class _UntracedStub(ElasticStub):
    """The stub's invoke loop as it was before instrumentation: no
    ``_note_call`` / ``_note_failed_attempt`` sites at all, so it is the
    true zero-cost baseline the disabled path is held against."""

    def _invoke(self, method: str, args: tuple, kwargs: dict) -> Any:
        payload = marshal_call(args, kwargs)
        state = self._retry_policy.start(
            clock=self._clock, rng=self._rng, sleep=self._sleep
        )
        last_error: Exception | None = None
        while True:
            try:
                targets = self._targets()
            except (ConnectError, MemberDrainedError, RemoteError) as exc:
                last_error = exc
                if not state.next_round():
                    break
                continue
            for ref in targets:
                if not state.allow_attempt():
                    break
                state.note_attempt()
                try:
                    return self._invoke_one(ref, method, payload)
                except (ConnectError, MemberDrainedError) as exc:
                    last_error = exc
                    self._discard(ref)
                    continue
                except ApplicationError:
                    raise
                except RemoteError as exc:
                    last_error = exc
                    continue
            if not state.next_round():
                break
            try:
                self._refresh_members()
            except (ConnectError, MemberDrainedError, RemoteError) as exc:
                last_error = exc
        raise ConnectError(
            f"all members of the elastic pool failed for {method!r}: "
            f"{state.exhausted_reason()}",
            cause=last_error,
        )


class _FixedSentinel(Remote):
    def __init__(self, members):
        self.members = members

    def ermi_member_identities(self):
        return list(self.members)


def _make_stub(cls: type[ElasticStub], obs: Any = None) -> ElasticStub:
    transport = DirectTransport()
    ep = transport.add_endpoint("member-0")
    member = Skeleton(_Echo(), transport, ep.endpoint_id).ref()
    sep = transport.add_endpoint("sentinel")
    sentinel = Skeleton(
        _FixedSentinel([member]), transport, sep.endpoint_id
    ).ref()
    kwargs: dict[str, Any] = {}
    if obs is not None:
        kwargs["obs"] = obs
    return cls(transport, lambda: sentinel, **kwargs)


def _time_calls(stub: ElasticStub, calls: int) -> float:
    stub.echo(0)  # warm the membership cache outside the timed region
    tick = time.perf_counter()
    for i in range(calls):
        stub.echo(i)
    return time.perf_counter() - tick


class TestDisabledObservabilityOverhead:
    def test_disabled_path_within_5_percent_of_untraced(self):
        instrumented = _make_stub(ElasticStub)        # obs=None default
        baseline = _make_stub(_UntracedStub)
        ratios = []
        for _ in range(TRIALS):
            # Interleave sides so drift hits both equally; keep minima.
            base = min(_time_calls(baseline, CALLS) for _ in range(3))
            inst = min(_time_calls(instrumented, CALLS) for _ in range(3))
            ratio = inst / base
            ratios.append(ratio)
            if ratio <= 1.0 + TOLERANCE:
                return
        pytest.fail(
            f"disabled-obs invoke path exceeded the {TOLERANCE:.0%} budget "
            f"in every trial: ratios {[f'{r:.3f}' for r in ratios]}"
        )

    def test_enabled_path_actually_records(self):
        """Sanity: the same rig with observability wired does trace, so
        the comparison above is measuring a real off switch."""
        obs = Observability(clock=SimClock())
        stub = _make_stub(ElasticStub, obs=obs)
        stub.echo("x")
        assert obs.registry.counter("rmi.client.calls").value == 1
        assert len(obs.tracer.events(kind="call")) == 1
