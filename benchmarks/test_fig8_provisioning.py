"""Figures 8a and 8b: provisioning latency.

The paper's observations, asserted here:

- ElasticRMI's provisioning latency is below 30 seconds in all cases;
- it grows as the workload (and hence the sentinel's redirect work)
  grows;
- overprovisioning never provisions at runtime (latency zero by
  construction);
- CloudWatch VM provisioning is minutes — "well above" both, which is
  why the paper omits it from the figure; we assert the separation.
"""

from __future__ import annotations

import statistics

from repro.experiments.figures import (
    figure8_provisioning,
    print_provisioning_figure,
)
from repro.experiments.harness import run_deployment

APPS = ("marketcetera", "hedwig", "paxos", "dcs")


def check_figure(figure):
    for app in APPS:
        points = figure.series[app]
        assert points, f"{app}: no scale-ups on this trace?"
        # < 30 s in all cases.
        assert figure.max_latency(app) < 30.0
        assert all(lat > 0 for _, lat in points)
    # Overprovisioning is always zero / absent.
    assert figure.series["overprovisioning"] == []


def test_fig8a(once):
    figure = once(figure8_provisioning, "abrupt")
    print("\n" + print_provisioning_figure(figure))
    check_figure(figure)
    # Latency grows with workload: scale-ups in the high-load window are
    # slower than early low-load scale-ups (marketcetera trace: the
    # abrupt peak sits between minutes 205 and 250).
    points = figure.series["marketcetera"]
    early = [lat for t, lat in points if t < 9_000]
    peak = [lat for t, lat in points if 12_000 <= t <= 16_000]
    assert early and peak
    assert statistics.mean(peak) > statistics.mean(early)


def test_fig8b(once):
    figure = once(figure8_provisioning, "cyclic")
    print("\n" + print_provisioning_figure(figure))
    check_figure(figure)
    # Repeating pattern: each cycle provisions again (scale-ups spread
    # over all three cycles, not just the first).
    for app in APPS:
        times = [t for t, _ in figure.series[app]]
        duration = 500 * 60.0
        thirds = {int(t // (duration / 3)) for t in times}
        assert len(thirds) >= 2, f"{app}: scale-ups confined to one cycle"


def test_fig8_cloudwatch_separation(once):
    """CloudWatch provisioning is in minutes — well above ElasticRMI's
    30-second ceiling (the reason it is omitted from Figure 8)."""

    def run_pair():
        ermi = run_deployment("marketcetera", "abrupt", "elasticrmi")
        cloud = run_deployment("marketcetera", "abrupt", "cloudwatch")
        return ermi, cloud

    ermi, cloud = once(run_pair)
    assert cloud.provisioning, "CloudWatch never scaled on the trace"
    slowest_ermi = max(lat for _, lat in ermi.provisioning)
    fastest_cloud = min(lat for _, lat in cloud.provisioning)
    assert fastest_cloud > 4 * slowest_ermi
    assert fastest_cloud >= 240.0  # minutes-scale VM boot
