"""Scenario suite benchmark: runs the full matrix, refreshes baselines.

Runs every scenario in :data:`repro.scenarios.catalog.SCENARIOS` once
and rewrites its ``BENCH_scenario_*.json`` at the repo root, then
asserts each scenario's headline story:

- **diurnal** — the pool tracks the cycle with near-zero agility and
  tight tails;
- **flash-crowd** — the spike's provisioning lag shows up as a p99 far
  above p50, but the QoS bound holds and nothing is lost;
- **thundering-herd** — reconnects re-dispatch in-flight operations and
  the herd burst lands, with full completion;
- **hot-key** — the per-member LRU keeps the hit rate high and the hot
  shard grows while cold shards hold their minimum;
- **multi-tenant** — both tenants meet QoS side by side.

Unlike the wall-clock suites, these reports are deterministic: metrics
are virtual-time, so ``ERMI_BENCH_SCALE`` changes the *report contents*
(fewer simulated arrivals), not just the measurement window.  Baselines
are committed at scale 1.0 — only refresh them at the default scale.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.benchreport import (
    bench_scale,
    format_table,
    load_report,
    validate_report,
)
from repro.scenarios.bench import run_scenario_suite, scenario_report_path
from repro.scenarios.catalog import SCENARIOS

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def suite():
    results = run_scenario_suite(out_dir=str(REPO_ROOT))
    for _name, result, doc in results:
        print("\n" + result.describe())
        print(format_table_from_doc(doc))
    return {name: (result, doc) for name, result, doc in results}


def format_table_from_doc(doc):
    from repro.experiments.benchreport import BenchRecord

    records = [BenchRecord(**record) for record in doc["records"]]
    return format_table(records)


class TestScenarioReports:
    def test_every_scenario_emits_a_wellformed_report(self, suite):
        for name in SCENARIOS:
            path = scenario_report_path(str(REPO_ROOT), name)
            doc = load_report(path)
            assert validate_report(doc) == [], path
            assert doc["deterministic"] is True
            assert "created_unix" not in doc  # replayable byte-for-byte
            assert doc["extra"]["seed"] == SCENARIOS[name].seed

    def test_matrix_covers_the_issue(self, suite):
        assert len(suite) >= 4

    def test_reports_match_live_docs(self, suite):
        for name, (_result, doc) in suite.items():
            on_disk = load_report(scenario_report_path(str(REPO_ROOT), name))
            assert on_disk == doc


class TestScenarioStories:
    def test_diurnal_tracks_the_cycle(self, suite):
        result, _ = suite["diurnal"]
        assert result.qos_met()
        assert result.average_agility() < 1.5
        tenant = result.tenants["dcs"]
        assert tenant.stats.completed == tenant.stats.arrivals

    def test_flash_crowd_shows_provisioning_lag_but_holds_qos(self, suite):
        result, doc = suite["flash-crowd"]
        assert result.qos_met()
        record = doc["records"][0]
        # The spike's queueing tail dwarfs the steady-state median.
        assert record["p99_us"] > 10 * record["p50_us"]

    def test_thundering_herd_reconnects_everything(self, suite):
        result, _ = suite["thundering-herd"]
        if bench_scale() >= 1.0:
            # At smoke scales the two victims may have nothing in
            # flight at the kill instant; at full scale they always do.
            assert result.total("redispatched") > 0
        expected_herd = int(
            round(900_000 * SCENARIOS["thundering-herd"].model_factor
                  * bench_scale())
        )
        assert result.total("herd_arrivals") == expected_herd
        assert result.total("completed") == result.total("arrivals")

    def test_hot_key_warms_caches_and_grows_hot_shard(self, suite):
        result, _ = suite["hot-key"]
        tenant = result.tenants["hedwig-sharded"]
        assert tenant.stats.cache_hit_rate() > 0.5
        assert len(tenant.final_sizes) == 4
        # Skew concentrates load: mid-run the tenant's provisioned
        # capacity rose above the 4x2 shard minimum (the hot shard
        # grew; the drain shrinks it back before final_sizes).
        total_min = SCENARIOS["hot-key"].tenants[0].pool.total_min()
        peak = max(s.cap_prov for s in tenant.agility.samples)
        assert peak > total_min

    def test_multi_tenant_meets_qos_side_by_side(self, suite):
        result, _ = suite["multi-tenant"]
        assert set(result.tenants) == {"marketcetera", "hedwig"}
        for tenant in result.tenants.values():
            assert tenant.qos_met()

    def test_percentiles_are_coherent(self, suite):
        for _name, (_result, doc) in suite.items():
            for record in doc["records"]:
                assert 0 < record["p50_us"] <= record["p99_us"]
                assert record["calls"] > 0
