"""RMI hot-path benchmark: the perf baseline every later PR measures
against.

Runs :func:`repro.experiments.benchreport.run_hotpath_suite` once,
writes ``BENCH_rmi_hotpath.json`` at the repo root, and asserts the
headline claims:

- the zero-copy marshal fast path is >= 3x the pickled baseline on the
  immutable-payload microbenchmark (both measured in this same run);
- calls/sec and p50/p99 are reported for the direct transport, the
  threaded transport, and elastic-stub fan-out at pool sizes 2/8/32;
- the emitted JSON is well-formed against the ``repro.bench/v1`` schema.

Set ``ERMI_BENCH_SCALE`` (e.g. ``0.05``) to shrink iteration counts for
CI smoke runs; the assertions are scale-independent.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.benchreport import (
    format_table,
    load_report,
    run_hotpath_suite,
    validate_report,
    write_report,
)

REPORT_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_rmi_hotpath.json"
)


@pytest.fixture(scope="module")
def records():
    suite = run_hotpath_suite()
    write_report(str(REPORT_PATH), "rmi_hotpath", suite)
    print("\n" + format_table(suite))
    return {record.name: record for record in suite}


class TestHotpathBenchmark:
    def test_report_emitted_and_wellformed(self, records):
        assert REPORT_PATH.exists()
        doc = load_report(str(REPORT_PATH))
        assert validate_report(doc) == []
        names = {record["name"] for record in doc["records"]}
        assert {
            "marshal-pickle",
            "marshal-cache",
            "marshal-zerocopy",
            "direct-unicast",
            "threaded-unicast",
            "elastic-pool2",
            "elastic-pool8",
            "elastic-pool32",
        } <= names

    def test_zero_copy_beats_pickled_baseline_3x(self, records):
        """The tentpole claim: immutable payloads skip pickling for a
        >= 3x marshal-layer throughput win."""
        fast = records["marshal-zerocopy"].calls_per_sec
        baseline = records["marshal-pickle"].calls_per_sec
        assert fast >= 3.0 * baseline, (
            f"zero-copy {fast:.0f} calls/s vs pickled {baseline:.0f} "
            f"calls/s: ratio {fast / baseline:.2f}x < 3x"
        )

    def test_cache_mode_not_slower_than_baseline(self, records):
        cached = records["marshal-cache"].calls_per_sec
        baseline = records["marshal-pickle"].calls_per_sec
        assert cached >= 0.9 * baseline

    def test_fanout_measured_at_all_pool_sizes(self, records):
        for size in (2, 8, 32):
            record = records[f"elastic-pool{size}"]
            assert record.config["pool_size"] == size
            assert record.calls_per_sec > 0

    def test_percentiles_are_coherent(self, records):
        for record in records.values():
            assert 0 < record.p50_us <= record.p99_us
            assert record.calls > 0
            assert record.elapsed_s > 0
