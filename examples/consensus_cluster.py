#!/usr/bin/env python3
"""An elastic Paxos cluster: consensus that survives scaling and
leader failure.

Deploys the multi-Paxos replica pool, drives proposals through it (any
member forwards to the leader), grows the pool mid-stream (new replicas
catch up), and terminates the leader to show royal-hierarchy
re-election preserving every chosen value.

Run:  python examples/consensus_cluster.py
"""

from repro import ElasticRuntime
from repro.apps.paxos import PaxosReplica


def main():
    print("=== Elastic Paxos cluster ===\n")
    runtime = ElasticRuntime.local(nodes=8)
    try:
        pool = runtime.new_pool(PaxosReplica, name="paxos", max_size=9)
        print(f"replica pool: {pool.size()} members, "
              f"leader uid={pool.sentinel().uid}")

        client = runtime.stub("paxos", caller="app")

        # Drive some consensus rounds through the replicated state machine.
        client.propose({"op": "put", "key": "config/mode", "value": "primary"})
        client.propose({"op": "incr", "key": "epoch"})
        result = client.propose({"op": "incr", "key": "epoch"})
        print(f"epoch after two increments: {result['result']} "
              f"(slot {result['slot']})")

        # Every replica applied the same log.
        reads = {m.uid: m.instance.read("epoch") for m in pool.active_members()}
        print(f"epoch on every replica: {reads}")

        # Grow the pool: the new replica catches up on join.
        pool.grow(2)
        import time
        deadline = time.monotonic() + 2.0
        while pool.size() < 5 and time.monotonic() < deadline:
            time.sleep(0.05)
        newest = pool.active_members()[-1]
        print(f"\ngrew to {pool.size()} replicas; "
              f"replica uid={newest.uid} caught up: "
              f"epoch={newest.instance.read('epoch')}")

        # Kill the leader: next-lowest uid takes over; values survive.
        old_leader = pool.sentinel()
        pool._terminate(old_leader)
        print(f"terminated leader uid={old_leader.uid}; "
              f"new leader uid={pool.sentinel().uid}")
        result = client.propose(
            {"op": "put", "key": "config/mode", "value": "secondary"}
        )
        print(f"post-failover proposal applied at slot {result['slot']}")
        survivors = {
            m.uid: m.instance.read("config/mode")
            for m in pool.active_members()
        }
        print(f"config/mode on every replica: {survivors}")
        print(f"rounds completed (shared counter): "
              f"{runtime.store.get('PaxosReplica$rounds_completed')}")
    finally:
        runtime.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
