#!/usr/bin/env python3
"""Hedwig-style publish/subscribe on an elastic hub pool.

Topics are partitioned across the hubs; delivery is at-most-once
(cursors advance before messages are handed out).  The demo publishes
across several topics, consumes from two subscribers with different
paces, and shows backlog accounting — the application metric Hedwig's
fine-grained scaling keys on.

Run:  python examples/pubsub_hedwig.py
"""

from repro import ElasticRuntime
from repro.apps.hedwig import Hub


def main():
    print("=== Hedwig pub/sub on an elastic hub pool ===\n")
    runtime = ElasticRuntime.local(nodes=6)
    try:
        pool = runtime.new_pool(Hub, name="hubs", max_size=8)
        hub = runtime.stub("hubs", caller="region-client")
        print(f"hub pool: {pool.size()} hubs")

        # Topic ownership is partitioned across the hubs.
        topics = [f"market-data/{s}" for s in ("AAPL", "MSFT", "GOOG", "TSLA")]
        owners = {t: hub.topic_stats(t)["owner"] for t in topics}
        print(f"topic owners: {owners}")

        # Two subscribers at different paces.
        hub.subscribe("market-data/AAPL", "fast-trader")
        hub.subscribe("market-data/AAPL", "slow-dashboard")
        for i in range(10):
            hub.publish("market-data/AAPL", {"tick": i, "px": 150 + i * 0.1})

        fast = hub.consume("market-data/AAPL", "fast-trader", max_messages=100)
        slow = hub.consume("market-data/AAPL", "slow-dashboard", max_messages=3)
        print(f"\nfast-trader consumed {len(fast)} messages")
        print(f"slow-dashboard consumed {len(slow)} messages")
        print(f"backlog (laggiest subscriber): "
              f"{hub.backlog('market-data/AAPL')}")

        # At-most-once: consuming again never redelivers.
        again = hub.consume("market-data/AAPL", "fast-trader")
        print(f"fast-trader consuming again gets {len(again)} messages "
              "(at-most-once: no redelivery)")

        stats = hub.topic_stats("market-data/AAPL")
        print(f"\ntopic stats: {stats}")
        print(f"published total (shared): "
              f"{runtime.store.get('Hub$published_total')}")
        print(f"delivered total (shared): "
              f"{runtime.store.get('Hub$delivered_total')}")
    finally:
        runtime.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
