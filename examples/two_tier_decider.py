#!/usr/bin/env python3
"""Application-level scaling across two elastic pools (paper §3.3).

A web tier and a worker tier form one application.  Local, per-pool
scaling cannot see cross-tier relationships (each worker batch serves
several web requests), so a :class:`Decider` sizes *both* pools from a
whole-application view: the worker tier follows the web tier at a fixed
ratio, and the web tier follows the measured request rate.

Run:  python examples/two_tier_decider.py
"""

import time

from repro import Decider, ElasticObject, ElasticRuntime, elastic_field


class WebTier(ElasticObject):
    requests_seen = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(12)
        self.set_burst_interval(0.3)  # fast ticks for the demo

    def handle_request(self, path):
        type(self).requests_seen.update(self, lambda v: v + 1)
        return f"200 OK {path}"


class WorkerTier(ElasticObject):
    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(24)
        self.set_burst_interval(0.3)

    def process(self, job):
        return f"processed:{job}"


class ApplicationDecider(Decider):
    """Sees the whole application: web tier sized from demand, worker
    tier at 2 workers per web member."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.web_demand = 2  # members the web tier currently needs

    def get_desired_pool_size(self, pool):
        if pool.name == "web":
            return self.web_demand
        if pool.name == "workers":
            return 2 * self.runtime.pool("web").size()
        return pool.size()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def main():
    print("=== Two-tier application with a Decider ===\n")
    runtime = ElasticRuntime.local(nodes=12)
    try:
        decider = ApplicationDecider(runtime)
        web = runtime.new_pool(WebTier, name="web", decider=decider)
        workers = runtime.new_pool(WorkerTier, name="workers", decider=decider)
        print(f"initial sizes: web={web.size()} workers={workers.size()}")

        front = runtime.stub("web")
        for i in range(10):
            front.handle_request(f"/item/{i}")
        print(f"requests seen: {runtime.store.get('WebTier$requests_seen')}")

        # Demand spikes: the decider grows both tiers, in ratio.
        decider.web_demand = 5
        ok = wait_for(lambda: web.size() == 5 and workers.size() == 10)
        print(f"\nafter demand spike: web={web.size()} workers={workers.size()} "
              f"({'in ratio' if ok else 'still converging'})")

        # Demand falls: both tiers shrink together.
        decider.web_demand = 2
        wait_for(lambda: web.size() == 2 and workers.size() == 4, timeout=8.0)
        print(f"after demand drop:  web={web.size()} workers={workers.size()}")

        back = runtime.stub("workers")
        print(f"\nworker tier still serving: {back.process('job-1')}")
    finally:
        runtime.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
