#!/usr/bin/env python3
"""Quickstart: the paper's distributed-cache examples, end to end.

Builds the three cache classes of the paper (Figures 4a, 4b, and 5) —
implicit elasticity, explicit coarse-grained thresholds, and explicit
fine-grained ``change_pool_size`` — deploys one of them on a live
ElasticRMI runtime, and talks to the pool through a client stub as if it
were a single remote object.

Run:  python examples/quickstart.py
"""

from repro import ElasticObject, ElasticRuntime, elastic_field, synchronized


class CacheImplicit(ElasticObject):
    """Figure 4a: implicit elasticity — just bound the pool size.

    The runtime applies its defaults: every 60 s, add one member above
    90% average CPU, remove one below 60%.
    """

    hits = elastic_field(default=0)
    misses = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(5)
        self.set_max_pool_size(50)

    def put(self, key, value):
        self._ermi_ctx.store.put(f"cache/{key}", value)
        return True

    def get(self, key):
        value = self._ermi_ctx.store.get(f"cache/{key}", default=None)
        field = type(self).hits if value is not None else type(self).misses
        field.update(self, lambda v: v + 1)
        return value

    @synchronized
    def clear_stats(self):
        self.hits = 0
        self.misses = 0


class CacheExplicit1(CacheImplicit):
    """Figure 4b: explicit coarse-grained elasticity — custom burst
    interval and CPU/RAM thresholds (interpreted with logical OR)."""

    def __init__(self):
        super().__init__()
        self.set_burst_interval(5 * 60)  # 5 minutes (seconds here)
        self.set_cpu_incr_threshold(85)
        self.set_ram_incr_threshold(70)
        self.set_cpu_decr_threshold(50)
        self.set_ram_decr_threshold(40)


class CacheExplicit2(CacheImplicit):
    """Figure 5: fine-grained elasticity from application metrics.

    Grows by two members when put latency degrades — unless write-lock
    contention is the real bottleneck, in which case adding members
    would only make it worse.
    """

    avg_lock_acq_failure = elastic_field(default=0.0)
    avg_lock_acq_latency = elastic_field(default=0.0)

    def change_pool_size(self):
        stats = self.get_method_call_stats()
        put = stats.get("put")
        get = stats.get("get")
        if put is None:
            return 0
        put_latency = put.latency()
        get_latency = get.latency() if get else 0.0
        if put_latency > 0.100 or put_latency > 3 * get_latency:
            if self.avg_lock_acq_failure > 50:
                return 0
            if self.avg_lock_acq_latency >= 0.8 * put_latency:
                return 0
            return 2
        return 0


def main():
    print("=== ElasticRMI quickstart: elastic distributed cache ===\n")
    runtime = ElasticRuntime.local(nodes=8)
    try:
        # Instantiate the elastic class: one pool, five members, each on
        # its own cluster slice behind its own endpoint.
        pool = runtime.new_pool(CacheImplicit, name="cache")
        print(f"pool started with {pool.size()} members "
              f"(sentinel: uid {pool.sentinel().uid})")

        # Clients see a single remote object.
        cache = runtime.stub("cache")
        cache.put("user:42", {"name": "Ada", "plan": "pro"})
        cache.put("user:43", {"name": "Linus", "plan": "free"})
        print("get(user:42) ->", cache.get("user:42"))
        print("get(nope)    ->", cache.get("nope"))

        # Shared state: hit/miss counters live in the pool's store and
        # are consistent across members.
        for i in range(20):
            cache.get("user:42" if i % 2 else "user:43")
        print(f"hits={runtime.store.get('CacheImplicit$hits')} "
              f"misses={runtime.store.get('CacheImplicit$misses')}")

        # Calls are load-balanced: every member served some.
        served = {
            m.uid: m.skeleton.stats.total_calls()
            for m in pool.active_members()
        }
        print("calls per member:", served)

        # Elasticity is programmable per class; compare the policies the
        # three cache classes would get.
        from repro.core.scaling import select_policy
        for cls in (CacheImplicit, CacheExplicit1, CacheExplicit2):
            proto = cls()
            policy = select_policy(cls, proto._ermi_config, None)
            print(f"{cls.__name__:<16} -> {policy.name} policy")
    finally:
        runtime.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
