#!/usr/bin/env python3
"""DCS: distributed coordination for datacenter applications.

Uses the elastic coordination service the way applications use
ZooKeeper/Chubby: configuration trees, totally ordered updates, watches,
and leader election with ephemeral nodes.

Run:  python examples/coordination_service.py
"""

from repro import ElasticRuntime
from repro.apps.dcs import CoordinationService
from repro.errors import ApplicationError


def main():
    print("=== DCS coordination service ===\n")
    runtime = ElasticRuntime.local(nodes=6)
    try:
        runtime.new_pool(CoordinationService, name="dcs")
        dcs = runtime.stub("dcs", caller="service-a")

        # Configuration tree with totally ordered updates.
        dcs.create("/services")
        dcs.create("/services/search", {"replicas": 3})
        dcs.create("/services/search/shards")
        z1 = dcs.set_data("/services/search", {"replicas": 5})
        z2 = dcs.set_data("/services/search", {"replicas": 7})
        print(f"updates are totally ordered: zxid {z1} < {z2}")
        print(f"children of /services: {dcs.get_children('/services')}")

        # Conditional updates via versions.
        record = dcs.get("/services/search")
        print(f"current config: {record['data']} (version {record['version']})")
        try:
            dcs.set_data("/services/search", {"replicas": 1}, version=0)
        except ApplicationError as err:
            print(f"stale conditional update rejected: {err.cause}")

        # Watches: one-shot notifications through a polled event feed.
        dcs.watch("/services/search", "dashboard")
        dcs.set_data("/services/search", {"replicas": 9})
        events = dcs.poll_events("dashboard")
        print(f"dashboard saw: {[(e.kind, e.path) for e in events]}")

        # Leader election with ephemeral nodes.
        session_a = dcs.create_session()
        session_b = dcs.create_session()
        dcs.create("/leader", "service-a", ephemeral=True, session_id=session_a)
        print("\nservice-a holds /leader")
        try:
            dcs.create("/leader", "service-b", ephemeral=True,
                       session_id=session_b)
        except ApplicationError:
            print("service-b cannot take /leader while a holds it")
        dcs.close_session(session_a)
        dcs.create("/leader", "service-b", ephemeral=True, session_id=session_b)
        print("service-a's session closed -> service-b now holds /leader")
        print(f"\ntotal ordered updates issued: {runtime.store.get('dcs/zxid')}")
    finally:
        runtime.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
