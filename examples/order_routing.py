#!/usr/bin/env python3
"""Marketcetera-style order routing on an elastic pool.

Deploys the :class:`OrderRouter` application live, routes a stream of
simulator-generated orders through the pool, then kills a member
mid-stream to show the client stub masking the failure (retry on the
surviving members) — the paper's section 4.3 failover behaviour.

Run:  python examples/order_routing.py
"""

import random

from repro import ElasticRuntime
from repro.apps.marketcetera import OrderGenerator, OrderRouter


def main():
    print("=== Elastic order routing (Marketcetera workload) ===\n")
    runtime = ElasticRuntime.local(nodes=8)
    try:
        pool = runtime.new_pool(OrderRouter, name="router", max_size=8)
        print(f"router pool: {pool.size()} members")

        stub = runtime.stub("router", caller="trading-desk")
        generator = OrderGenerator(random.Random(7))

        # Route a first batch.
        acks = [stub.submit_order(o) for o in generator.batch(30)]
        by_destination = {}
        for ack in acks:
            by_destination[ack.destination] = (
                by_destination.get(ack.destination, 0) + 1
            )
        print(f"routed {len(acks)} orders: {by_destination}")
        print(f"every order persisted on two nodes, e.g. {acks[0].replicas}")

        # Query and cancel.
        sample = acks[0].order_id
        print(f"status({sample}) -> {stub.order_status(sample)['status']}")
        print(f"cancel({sample}) -> {stub.cancel_order(sample)}")

        # Kill a member mid-stream: clients keep routing.
        victim = pool.active_members()[1]
        runtime.transport.kill(victim.endpoint_id)
        print(f"\nkilled member uid={victim.uid}; routing continues:")
        more = [stub.submit_order(o) for o in generator.batch(20)]
        print(f"routed {len(more)} more orders after the failure")
        print(f"total routed (shared counter): {stub.routed_count()}")

        # The fine-grained scaling vote, driven by real method stats.
        pool.roll_window()
        stats = pool.method_call_stats()
        submit = stats.get("submit_order")
        if submit:
            print(f"\nlast-window stats: {submit.calls} submits, "
                  f"{submit.rate:.2f}/s, {submit.latency() * 1000:.2f} ms mean")
    finally:
        runtime.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
