#!/usr/bin/env python3
"""Reproduce one paper panel from the command line.

Runs Figure 7c (Marketcetera order routing, abrupt workload) — all four
deployments over the full 450-minute trace in virtual time — and prints
the agility series and summary rows, plus the Figure 8 provisioning
summary for the same run.

Run:  python examples/elasticity_experiment.py [figure]
      (figure one of 7c 7d 7e 7f 7g 7h 7i 7j; default 7c)
"""

import sys

from repro.experiments import figure7_agility
from repro.experiments.figures import FIGURE7_PANELS, print_agility_panel


def sparkline(series, width=60, height_levels=8):
    """Terminal sparkline for an agility series."""
    blocks = " ▁▂▃▄▅▆▇█"
    values = [v for _, v in series]
    if not values:
        return "(no samples)"
    peak = max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(
        blocks[min(height_levels, int(v / peak * height_levels))]
        for v in sampled
    )


def main():
    figure = sys.argv[1] if len(sys.argv) > 1 else "7c"
    if figure not in FIGURE7_PANELS:
        raise SystemExit(f"unknown figure {figure!r}; pick one of "
                         f"{', '.join(FIGURE7_PANELS)}")
    app, workload = FIGURE7_PANELS[figure]
    print(f"=== Reproducing Figure {figure}: {app}, {workload} workload ===")
    print("(450-500 simulated minutes per deployment; a few seconds of "
          "wall time)\n")

    panel = figure7_agility(figure)
    print(print_agility_panel(panel))

    print("\nagility over time (darker = worse):")
    for name, result in panel.results.items():
        print(f"  {name:<20} {sparkline(result.agility_series())}")

    ermi = panel.results["elasticrmi"]
    if ermi.provisioning:
        latencies = [lat for _, lat in ermi.provisioning]
        print(f"\nElasticRMI provisioning (Figure 8 view): "
              f"{len(latencies)} scale-ups, "
              f"mean {sum(latencies) / len(latencies):.1f}s, "
              f"max {max(latencies):.1f}s (< 30s, as the paper reports)")
    print("\ndone.")


if __name__ == "__main__":
    main()
